//! The DySER ISA extension.
//!
//! DySER is exposed to software through a small set of instructions that
//! move values between the core and the fabric's named input/output ports,
//! plus configuration management. This mirrors the extension the prototype
//! adds to the OpenSPARC decode stage:
//!
//! * `dinit cfg` — begin loading configuration `cfg` from the configuration
//!   table (the compiler emits one table entry per accelerated region),
//! * `dsend rs -> p` / `dsendf` — enqueue a register value on input port `p`,
//! * `drecv p -> rd` / `drecvf` — dequeue a value from output port `p`,
//! * `dload [addr] -> p` — load from memory straight into an input port,
//!   bypassing the register file (the paper's memory-interface optimization),
//! * `dstore p -> [addr]` — store an output-port value straight to memory,
//! * `dsendv` / `drecvv` — vector transfers: move a run of consecutive
//!   registers through a *vector port*, which the configuration fans out to
//!   several scalar ports (the flexible vector interface),
//! * `dfence` — wait until the fabric has drained (region exit barrier).

use std::fmt;

use crate::reg::{FReg, Reg};

/// A scalar fabric port identifier (input or output, 0..32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(u8);

impl Port {
    /// Maximum number of scalar ports addressable by the ISA.
    pub const COUNT: usize = 32;

    /// Creates a port from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "port index {index} out of range");
        Port(index)
    }

    /// Creates a port from its index if it is in range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 32).then_some(Port(index))
    }

    /// The port index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 5-bit encoding field.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A vector port identifier. A vector port is configured to fan out to (or
/// gather from) a list of scalar ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VecPort(u8);

impl VecPort {
    /// Maximum number of vector ports addressable by the ISA.
    pub const COUNT: usize = 8;

    /// Creates a vector port from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn new(index: u8) -> Self {
        assert!(index < 8, "vector port index {index} out of range");
        VecPort(index)
    }

    /// Creates a vector port from its index if it is in range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 8).then_some(VecPort(index))
    }

    /// The vector port index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 3-bit encoding field.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Display for VecPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vp{}", self.0)
    }
}

/// An index into the program's configuration table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ConfigId(u16);

impl ConfigId {
    /// Maximum number of configurations addressable by `dinit`.
    pub const COUNT: usize = 1 << 12;

    /// Creates a configuration id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4096` (the `dinit` immediate field width).
    pub fn new(index: u16) -> Self {
        assert!((index as usize) < Self::COUNT, "config id {index} out of range");
        ConfigId(index)
    }

    /// The table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw encoding field.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfg{}", self.0)
    }
}

/// A decoded DySER-extension instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DyserInstr {
    /// Begin loading a fabric configuration. Blocks at the interface until
    /// the configuration bitstream has streamed in (unless it is already
    /// the active configuration, in which case it is free).
    Init {
        /// The configuration table entry to load.
        config: ConfigId,
    },
    /// Send an integer register to an input port.
    Send {
        /// Destination input port.
        port: Port,
        /// Source register.
        rs: Reg,
    },
    /// Send a floating-point register to an input port.
    SendF {
        /// Destination input port.
        port: Port,
        /// Source fp register.
        rs: FReg,
    },
    /// Receive from an output port into an integer register.
    Recv {
        /// Source output port.
        port: Port,
        /// Destination register.
        rd: Reg,
    },
    /// Receive from an output port into a floating-point register.
    RecvF {
        /// Source output port.
        port: Port,
        /// Destination fp register.
        rd: FReg,
    },
    /// Load a 64-bit word from memory straight into an input port.
    Load {
        /// Destination input port.
        port: Port,
        /// Base address register.
        rs1: Reg,
        /// Address offset.
        op2: crate::instr::Op2,
    },
    /// Store an output-port value straight to memory (64-bit).
    Store {
        /// Source output port.
        port: Port,
        /// Base address register.
        rs1: Reg,
        /// Address offset.
        op2: crate::instr::Op2,
    },
    /// Send `count` consecutive integer registers starting at `base`
    /// through a vector port.
    SendVec {
        /// The vector port.
        vport: VecPort,
        /// First source register.
        base: Reg,
        /// Number of registers (1..=8).
        count: u8,
    },
    /// Receive `count` values from a vector port into consecutive integer
    /// registers starting at `base`.
    RecvVec {
        /// The vector port.
        vport: VecPort,
        /// First destination register.
        base: Reg,
        /// Number of registers (1..=8).
        count: u8,
    },
    /// Wait until the fabric has no values in flight.
    Fence,
}

impl fmt::Display for DyserInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DyserInstr::Init { config } => write!(f, "dinit {config}"),
            DyserInstr::Send { port, rs } => write!(f, "dsend {rs}, {port}"),
            DyserInstr::SendF { port, rs } => write!(f, "dsendf {rs}, {port}"),
            DyserInstr::Recv { port, rd } => write!(f, "drecv {port}, {rd}"),
            DyserInstr::RecvF { port, rd } => write!(f, "drecvf {port}, {rd}"),
            DyserInstr::Load { port, rs1, op2 } => write!(f, "dload [{rs1} + {op2}], {port}"),
            DyserInstr::Store { port, rs1, op2 } => write!(f, "dstore {port}, [{rs1} + {op2}]"),
            DyserInstr::SendVec { vport, base, count } => {
                write!(f, "dsendv {base}..{count}, {vport}")
            }
            DyserInstr::RecvVec { vport, base, count } => {
                write!(f, "drecvv {vport}, {base}..{count}")
            }
            DyserInstr::Fence => write!(f, "dfence"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Op2;
    use crate::reg::reg;

    #[test]
    fn port_bounds() {
        assert!(Port::try_new(31).is_some());
        assert!(Port::try_new(32).is_none());
        assert!(VecPort::try_new(7).is_some());
        assert!(VecPort::try_new(8).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_new_panics() {
        let _ = Port::new(32);
    }

    #[test]
    fn config_id_bounds() {
        assert_eq!(ConfigId::new(0).index(), 0);
        assert_eq!(ConfigId::new(4095).index(), 4095);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn config_id_panics() {
        let _ = ConfigId::new(4096);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DyserInstr::Init { config: ConfigId::new(2) }.to_string(), "dinit cfg2");
        assert_eq!(
            DyserInstr::Send { port: Port::new(1), rs: reg::O0 }.to_string(),
            "dsend %o0, p1"
        );
        assert_eq!(
            DyserInstr::Load { port: Port::new(3), rs1: reg::O1, op2: Op2::Imm(8) }.to_string(),
            "dload [%o1 + 8], p3"
        );
        assert_eq!(DyserInstr::Fence.to_string(), "dfence");
    }
}
