//! A two-pass assembler with named labels.
//!
//! The [`Assembler`] collects instructions and label definitions, then
//! resolves label references into word displacements and emits the encoded
//! program. It is used by the compiler back end and by hand-written kernels
//! (the paper's "manually optimized" codes).
//!
//! Branch items reference labels by name; everything else is pushed as an
//! already-complete [`Instr`]. Delay slots are *not* inserted automatically:
//! callers own their delay-slot scheduling, as the compiler's peephole pass
//! does.
//!
//! ```
//! use dyser_isa::{Assembler, Instr, AluOp, Op2, ICond, regs};
//!
//! let mut asm = Assembler::new();
//! asm.push(Instr::mov_imm(regs::O0, 3));
//! asm.label("loop");
//! asm.push(Instr::alu(AluOp::SubCc, regs::O0, regs::O0, Op2::Imm(1)));
//! asm.branch(ICond::Ne, "loop");
//! asm.push(Instr::Nop); // delay slot
//! asm.push(Instr::Halt);
//! let words = asm.assemble().unwrap();
//! assert_eq!(words.len(), 5);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::cond::{FCond, ICond, RCond};
use crate::encode::encode;
use crate::instr::Instr;
use crate::reg::Reg;

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// A resolved displacement does not fit its encoding field.
    DisplacementOverflow {
        /// The target label.
        label: String,
        /// The displacement, in instruction words.
        disp: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::DisplacementOverflow { label, disp } => {
                write!(f, "branch to `{label}` has displacement {disp} words, out of range")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Plain(Instr),
    Branch { cond: ICond, label: String },
    BranchF { cond: FCond, label: String },
    BranchReg { cond: RCond, rs1: Reg, label: String },
    Call { label: String },
}

/// A two-pass assembler producing encoded instruction words.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Plain(instr));
        self
    }

    /// Appends several instructions.
    pub fn extend<I: IntoIterator<Item = Instr>>(&mut self, instrs: I) -> &mut Self {
        for i in instrs {
            self.push(i);
        }
        self
    }

    /// Defines a label at the current position.
    ///
    /// A duplicate definition is reported by [`Assembler::assemble`].
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let pos = self.items.len();
        if self.labels.insert(name.clone(), pos).is_some() && self.error.is_none() {
            self.error = Some(AsmError::DuplicateLabel { label: name });
        }
        self
    }

    /// Appends an integer condition-code branch to a label.
    pub fn branch(&mut self, cond: ICond, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Branch { cond, label: label.into() });
        self
    }

    /// Appends a floating-point branch to a label.
    pub fn branch_f(&mut self, cond: FCond, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::BranchF { cond, label: label.into() });
        self
    }

    /// Appends a register branch to a label.
    pub fn branch_reg(&mut self, cond: RCond, rs1: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::BranchReg { cond, rs1, label: label.into() });
        self
    }

    /// Appends a call to a label.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Call { label: label.into() });
        self
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and returns the decoded instruction stream (useful
    /// for tests and for the disassembly listings in the examples).
    ///
    /// # Errors
    ///
    /// Returns an error for undefined or duplicate labels and for branches
    /// whose displacement does not fit the encoding.
    pub fn resolve(&self) -> Result<Vec<Instr>, AsmError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let lookup = |label: &str, from: usize, bits: u32| -> Result<i32, AsmError> {
            let Some(&target) = self.labels.get(label) else {
                return Err(AsmError::UndefinedLabel { label: label.to_owned() });
            };
            let disp = target as i64 - from as i64;
            let min = -(1i64 << (bits - 1));
            let max = (1i64 << (bits - 1)) - 1;
            if !(min..=max).contains(&disp) {
                return Err(AsmError::DisplacementOverflow { label: label.to_owned(), disp });
            }
            Ok(disp as i32)
        };
        self.items
            .iter()
            .enumerate()
            .map(|(pos, item)| {
                Ok(match item {
                    Item::Plain(i) => *i,
                    Item::Branch { cond, label } => {
                        Instr::Branch { cond: *cond, disp: lookup(label, pos, 22)? }
                    }
                    Item::BranchF { cond, label } => {
                        Instr::BranchF { cond: *cond, disp: lookup(label, pos, 22)? }
                    }
                    Item::BranchReg { cond, rs1, label } => Instr::BranchReg {
                        cond: *cond,
                        rs1: *rs1,
                        disp: lookup(label, pos, 16)?,
                    },
                    Item::Call { label } => Instr::Call { disp: lookup(label, pos, 30)? },
                })
            })
            .collect()
    }

    /// Resolves labels and encodes the program into instruction words.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined or duplicate labels and for branches
    /// whose displacement does not fit the encoding.
    pub fn assemble(&self) -> Result<Vec<u32>, AsmError> {
        Ok(self.resolve()?.iter().map(encode).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;
    use crate::instr::{AluOp, Op2};
    use crate::reg::reg;

    #[test]
    fn backward_branch_resolves() {
        let mut asm = Assembler::new();
        asm.label("top");
        asm.push(Instr::Nop);
        asm.push(Instr::Nop);
        asm.branch(ICond::Always, "top");
        let prog = asm.resolve().unwrap();
        assert_eq!(prog[2], Instr::Branch { cond: ICond::Always, disp: -2 });
    }

    #[test]
    fn forward_branch_resolves() {
        let mut asm = Assembler::new();
        asm.branch(ICond::Eq, "done");
        asm.push(Instr::Nop);
        asm.push(Instr::Nop);
        asm.label("done");
        asm.push(Instr::Halt);
        let prog = asm.resolve().unwrap();
        assert_eq!(prog[0], Instr::Branch { cond: ICond::Eq, disp: 3 });
    }

    #[test]
    fn branch_to_self_is_zero_disp() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.branch(ICond::Always, "spin");
        let prog = asm.resolve().unwrap();
        assert_eq!(prog[0], Instr::Branch { cond: ICond::Always, disp: 0 });
    }

    #[test]
    fn undefined_label_errors() {
        let mut asm = Assembler::new();
        asm.branch(ICond::Always, "nowhere");
        assert_eq!(
            asm.assemble(),
            Err(AsmError::UndefinedLabel { label: "nowhere".into() })
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut asm = Assembler::new();
        asm.label("x");
        asm.push(Instr::Nop);
        asm.label("x");
        assert_eq!(asm.assemble(), Err(AsmError::DuplicateLabel { label: "x".into() }));
    }

    #[test]
    fn register_branch_overflow_detected() {
        let mut asm = Assembler::new();
        asm.label("far");
        for _ in 0..40000 {
            asm.push(Instr::Nop);
        }
        asm.branch_reg(RCond::Zero, reg::O0, "far");
        match asm.assemble() {
            Err(AsmError::DisplacementOverflow { label, disp }) => {
                assert_eq!(label, "far");
                assert_eq!(disp, -40000);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn assemble_roundtrips_through_decode() {
        let mut asm = Assembler::new();
        asm.push(Instr::mov_imm(reg::O0, 10));
        asm.label("loop");
        asm.push(Instr::alu(AluOp::SubCc, reg::O0, reg::O0, Op2::Imm(1)));
        asm.branch(ICond::Ne, "loop");
        asm.push(Instr::Nop);
        asm.push(Instr::Halt);
        let words = asm.assemble().unwrap();
        let resolved = asm.resolve().unwrap();
        for (word, instr) in words.iter().zip(&resolved) {
            assert_eq!(decode(*word).unwrap(), *instr);
        }
    }

    #[test]
    fn call_and_branch_variants() {
        let mut asm = Assembler::new();
        asm.call("f");
        asm.push(Instr::Nop);
        asm.branch_f(FCond::Lt, "f");
        asm.push(Instr::Nop);
        asm.label("f");
        asm.push(Instr::Halt);
        let prog = asm.resolve().unwrap();
        assert_eq!(prog[0], Instr::Call { disp: 4 });
        assert_eq!(prog[2], Instr::BranchF { cond: FCond::Lt, disp: 2 });
    }

    #[test]
    fn len_and_is_empty() {
        let mut asm = Assembler::new();
        assert!(asm.is_empty());
        asm.push(Instr::Nop);
        assert_eq!(asm.len(), 1);
        assert!(!asm.is_empty());
    }
}
