//! Condition codes and branch conditions.
//!
//! The integer condition codes (`icc`) are the SPARC `n`/`z`/`v`/`c` bits
//! produced by `addcc`/`subcc`; the floating-point condition code (`fcc`)
//! is the four-way relation produced by `fcmpd`. Branch condition encodings
//! follow the SPARC V9 tables so that disassembly reads naturally.

use std::fmt;

/// The integer condition-code register: negative, zero, overflow, carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Icc {
    /// Result was negative (bit 63 set).
    pub n: bool,
    /// Result was zero.
    pub z: bool,
    /// Signed overflow occurred.
    pub v: bool,
    /// Carry out / borrow occurred.
    pub c: bool,
}

impl Icc {
    /// Computes the condition codes of a 64-bit addition `a + b`.
    pub fn from_add(a: u64, b: u64) -> Self {
        let (res, carry) = a.overflowing_add(b);
        let v = ((a ^ res) & (b ^ res)) >> 63 == 1;
        Icc { n: (res >> 63) == 1, z: res == 0, v, c: carry }
    }

    /// Computes the condition codes of a 64-bit subtraction `a - b`.
    pub fn from_sub(a: u64, b: u64) -> Self {
        let (res, borrow) = a.overflowing_sub(b);
        let v = ((a ^ b) & (a ^ res)) >> 63 == 1;
        Icc { n: (res >> 63) == 1, z: res == 0, v, c: borrow }
    }

    /// Computes the condition codes of a logical result (only `n`/`z`).
    pub fn from_logic(res: u64) -> Self {
        Icc { n: (res >> 63) == 1, z: res == 0, v: false, c: false }
    }
}

impl fmt::Display for Icc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { '-' },
            if self.z { 'Z' } else { '-' },
            if self.v { 'V' } else { '-' },
            if self.c { 'C' } else { '-' }
        )
    }
}

/// Integer branch conditions (`bicc`), with their SPARC V9 4-bit encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ICond {
    /// Branch never.
    Never = 0b0000,
    /// Branch always.
    Always = 0b1000,
    /// Equal (`z`).
    Eq = 0b0001,
    /// Not equal (`!z`).
    Ne = 0b1001,
    /// Signed less-or-equal.
    Le = 0b0010,
    /// Signed greater.
    Gt = 0b1010,
    /// Signed less.
    Lt = 0b0011,
    /// Signed greater-or-equal.
    Ge = 0b1011,
    /// Unsigned less-or-equal.
    Leu = 0b0100,
    /// Unsigned greater.
    Gtu = 0b1100,
    /// Carry set (unsigned less).
    Ltu = 0b0101,
    /// Carry clear (unsigned greater-or-equal).
    Geu = 0b1101,
    /// Negative.
    Neg = 0b0110,
    /// Positive or zero.
    Pos = 0b1110,
    /// Overflow set.
    Vs = 0b0111,
    /// Overflow clear.
    Vc = 0b1111,
}

impl ICond {
    /// All conditions, useful for exhaustive tests.
    pub const ALL: [ICond; 16] = [
        ICond::Never,
        ICond::Always,
        ICond::Eq,
        ICond::Ne,
        ICond::Le,
        ICond::Gt,
        ICond::Lt,
        ICond::Ge,
        ICond::Leu,
        ICond::Gtu,
        ICond::Ltu,
        ICond::Geu,
        ICond::Neg,
        ICond::Pos,
        ICond::Vs,
        ICond::Vc,
    ];

    /// Decodes the 4-bit condition field.
    pub fn from_bits(bits: u32) -> Self {
        Self::ALL
            .into_iter()
            .find(|c| c.bits() == bits & 0xF)
            .expect("all 16 encodings are covered")
    }

    /// The 4-bit encoding field.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Evaluates the condition against a set of condition codes.
    pub fn eval(self, icc: Icc) -> bool {
        let Icc { n, z, v, c } = icc;
        match self {
            ICond::Never => false,
            ICond::Always => true,
            ICond::Eq => z,
            ICond::Ne => !z,
            ICond::Le => z || (n ^ v),
            ICond::Gt => !(z || (n ^ v)),
            ICond::Lt => n ^ v,
            ICond::Ge => !(n ^ v),
            ICond::Leu => c || z,
            ICond::Gtu => !(c || z),
            ICond::Ltu => c,
            ICond::Geu => !c,
            ICond::Neg => n,
            ICond::Pos => !n,
            ICond::Vs => v,
            ICond::Vc => !v,
        }
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> Self {
        match self {
            ICond::Never => ICond::Always,
            ICond::Always => ICond::Never,
            ICond::Eq => ICond::Ne,
            ICond::Ne => ICond::Eq,
            ICond::Le => ICond::Gt,
            ICond::Gt => ICond::Le,
            ICond::Lt => ICond::Ge,
            ICond::Ge => ICond::Lt,
            ICond::Leu => ICond::Gtu,
            ICond::Gtu => ICond::Leu,
            ICond::Ltu => ICond::Geu,
            ICond::Geu => ICond::Ltu,
            ICond::Neg => ICond::Pos,
            ICond::Pos => ICond::Neg,
            ICond::Vs => ICond::Vc,
            ICond::Vc => ICond::Vs,
        }
    }

    /// The assembly mnemonic suffix (`be`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICond::Never => "bn",
            ICond::Always => "ba",
            ICond::Eq => "be",
            ICond::Ne => "bne",
            ICond::Le => "ble",
            ICond::Gt => "bg",
            ICond::Lt => "bl",
            ICond::Ge => "bge",
            ICond::Leu => "bleu",
            ICond::Gtu => "bgu",
            ICond::Ltu => "blu",
            ICond::Geu => "bgeu",
            ICond::Neg => "bneg",
            ICond::Pos => "bpos",
            ICond::Vs => "bvs",
            ICond::Vc => "bvc",
        }
    }
}

impl fmt::Display for ICond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The floating-point condition code: the relation produced by `fcmpd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fcc {
    /// Operands compared equal.
    #[default]
    Eq,
    /// First operand was less.
    Lt,
    /// First operand was greater.
    Gt,
    /// At least one operand was NaN.
    Unordered,
}

impl Fcc {
    /// Computes the relation of two doubles, honouring NaN.
    pub fn compare(a: f64, b: f64) -> Self {
        match a.partial_cmp(&b) {
            Some(std::cmp::Ordering::Equal) => Fcc::Eq,
            Some(std::cmp::Ordering::Less) => Fcc::Lt,
            Some(std::cmp::Ordering::Greater) => Fcc::Gt,
            None => Fcc::Unordered,
        }
    }
}

/// Floating-point branch conditions (`fbfcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FCond {
    /// Branch never.
    Never = 0b0000,
    /// Branch always.
    Always = 0b1000,
    /// Equal.
    Eq = 0b0001,
    /// Not equal (includes unordered).
    Ne = 0b1001,
    /// Less.
    Lt = 0b0010,
    /// Greater or equal (ordered).
    Ge = 0b1010,
    /// Less or equal.
    Le = 0b0011,
    /// Greater (ordered).
    Gt = 0b1011,
    /// Unordered.
    Unordered = 0b0100,
    /// Ordered.
    Ordered = 0b1100,
}

impl FCond {
    /// All conditions, useful for exhaustive tests.
    pub const ALL: [FCond; 10] = [
        FCond::Never,
        FCond::Always,
        FCond::Eq,
        FCond::Ne,
        FCond::Lt,
        FCond::Ge,
        FCond::Le,
        FCond::Gt,
        FCond::Unordered,
        FCond::Ordered,
    ];

    /// Decodes the 4-bit condition field.
    pub fn from_bits(bits: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.bits() == bits & 0xF)
    }

    /// The 4-bit encoding field.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Evaluates the condition against a floating-point relation.
    pub fn eval(self, fcc: Fcc) -> bool {
        match self {
            FCond::Never => false,
            FCond::Always => true,
            FCond::Eq => fcc == Fcc::Eq,
            FCond::Ne => fcc != Fcc::Eq,
            FCond::Lt => fcc == Fcc::Lt,
            FCond::Ge => matches!(fcc, Fcc::Gt | Fcc::Eq),
            FCond::Le => matches!(fcc, Fcc::Lt | Fcc::Eq),
            FCond::Gt => fcc == Fcc::Gt,
            FCond::Unordered => fcc == Fcc::Unordered,
            FCond::Ordered => fcc != Fcc::Unordered,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCond::Never => "fbn",
            FCond::Always => "fba",
            FCond::Eq => "fbe",
            FCond::Ne => "fbne",
            FCond::Lt => "fbl",
            FCond::Ge => "fbge",
            FCond::Le => "fble",
            FCond::Gt => "fbg",
            FCond::Unordered => "fbu",
            FCond::Ordered => "fbo",
        }
    }
}

impl fmt::Display for FCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Register branch conditions (`brz` and friends), per SPARC V9 `BPr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RCond {
    /// Branch if the register is zero.
    Zero = 0b001,
    /// Branch if the register is less than or equal to zero (signed).
    LeZero = 0b010,
    /// Branch if the register is less than zero (signed).
    LtZero = 0b011,
    /// Branch if the register is non-zero.
    NonZero = 0b101,
    /// Branch if the register is greater than zero (signed).
    GtZero = 0b110,
    /// Branch if the register is greater than or equal to zero (signed).
    GeZero = 0b111,
}

impl RCond {
    /// All conditions, useful for exhaustive tests.
    pub const ALL: [RCond; 6] = [
        RCond::Zero,
        RCond::LeZero,
        RCond::LtZero,
        RCond::NonZero,
        RCond::GtZero,
        RCond::GeZero,
    ];

    /// Decodes the 3-bit condition field.
    pub fn from_bits(bits: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.bits() == bits & 0x7)
    }

    /// The 3-bit encoding field.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Evaluates the condition against a register value (as signed).
    pub fn eval(self, value: u64) -> bool {
        let v = value as i64;
        match self {
            RCond::Zero => v == 0,
            RCond::LeZero => v <= 0,
            RCond::LtZero => v < 0,
            RCond::NonZero => v != 0,
            RCond::GtZero => v > 0,
            RCond::GeZero => v >= 0,
        }
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> Self {
        match self {
            RCond::Zero => RCond::NonZero,
            RCond::NonZero => RCond::Zero,
            RCond::LeZero => RCond::GtZero,
            RCond::GtZero => RCond::LeZero,
            RCond::LtZero => RCond::GeZero,
            RCond::GeZero => RCond::LtZero,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RCond::Zero => "brz",
            RCond::LeZero => "brlez",
            RCond::LtZero => "brlz",
            RCond::NonZero => "brnz",
            RCond::GtZero => "brgz",
            RCond::GeZero => "brgez",
        }
    }
}

impl fmt::Display for RCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icc_add_overflow() {
        // i64::MAX + 1 overflows signed but not unsigned.
        let icc = Icc::from_add(i64::MAX as u64, 1);
        assert!(icc.v);
        assert!(icc.n);
        assert!(!icc.c);
    }

    #[test]
    fn icc_sub_borrow() {
        let icc = Icc::from_sub(1, 2);
        assert!(icc.c, "1 - 2 borrows");
        assert!(icc.n);
        assert!(!icc.z);
    }

    #[test]
    fn icc_zero() {
        let icc = Icc::from_sub(7, 7);
        assert!(icc.z);
        assert!(!icc.n);
        assert!(!icc.c);
    }

    #[test]
    fn icond_matches_signed_comparison() {
        let pairs: [(i64, i64); 7] =
            [(0, 0), (1, 2), (2, 1), (-5, 3), (3, -5), (i64::MIN, 1), (i64::MAX, -1)];
        for (a, b) in pairs {
            let icc = Icc::from_sub(a as u64, b as u64);
            assert_eq!(ICond::Eq.eval(icc), a == b, "{a} == {b}");
            assert_eq!(ICond::Ne.eval(icc), a != b, "{a} != {b}");
            assert_eq!(ICond::Lt.eval(icc), a < b, "{a} < {b}");
            assert_eq!(ICond::Le.eval(icc), a <= b, "{a} <= {b}");
            assert_eq!(ICond::Gt.eval(icc), a > b, "{a} > {b}");
            assert_eq!(ICond::Ge.eval(icc), a >= b, "{a} >= {b}");
        }
    }

    #[test]
    fn icond_matches_unsigned_comparison() {
        let pairs: [(u64, u64); 5] = [(0, 0), (1, 2), (2, 1), (u64::MAX, 1), (1, u64::MAX)];
        for (a, b) in pairs {
            let icc = Icc::from_sub(a, b);
            assert_eq!(ICond::Ltu.eval(icc), a < b, "{a} <u {b}");
            assert_eq!(ICond::Leu.eval(icc), a <= b, "{a} <=u {b}");
            assert_eq!(ICond::Gtu.eval(icc), a > b, "{a} >u {b}");
            assert_eq!(ICond::Geu.eval(icc), a >= b, "{a} >=u {b}");
        }
    }

    #[test]
    fn icond_negate_is_involution_and_complements() {
        for cond in ICond::ALL {
            assert_eq!(cond.negate().negate(), cond);
            for n in [false, true] {
                for z in [false, true] {
                    for v in [false, true] {
                        for c in [false, true] {
                            let icc = Icc { n, z, v, c };
                            assert_ne!(cond.eval(icc), cond.negate().eval(icc));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn icond_bits_roundtrip() {
        for cond in ICond::ALL {
            assert_eq!(ICond::from_bits(cond.bits()), cond);
        }
    }

    #[test]
    fn fcc_handles_nan() {
        assert_eq!(Fcc::compare(f64::NAN, 1.0), Fcc::Unordered);
        assert_eq!(Fcc::compare(1.0, 1.0), Fcc::Eq);
        assert_eq!(Fcc::compare(0.5, 1.0), Fcc::Lt);
        assert_eq!(Fcc::compare(2.0, 1.0), Fcc::Gt);
    }

    #[test]
    fn fcond_bits_roundtrip() {
        for cond in FCond::ALL {
            assert_eq!(FCond::from_bits(cond.bits()), Some(cond));
        }
    }

    #[test]
    fn fcond_eval() {
        assert!(FCond::Ne.eval(Fcc::Unordered), "fbne includes unordered");
        assert!(!FCond::Ge.eval(Fcc::Unordered), "fbge is an ordered compare");
        assert!(FCond::Le.eval(Fcc::Eq));
        assert!(FCond::Ordered.eval(Fcc::Gt));
    }

    #[test]
    fn rcond_matches_sign_tests() {
        for v in [-3i64, -1, 0, 1, 42] {
            let raw = v as u64;
            assert_eq!(RCond::Zero.eval(raw), v == 0);
            assert_eq!(RCond::NonZero.eval(raw), v != 0);
            assert_eq!(RCond::LtZero.eval(raw), v < 0);
            assert_eq!(RCond::LeZero.eval(raw), v <= 0);
            assert_eq!(RCond::GtZero.eval(raw), v > 0);
            assert_eq!(RCond::GeZero.eval(raw), v >= 0);
        }
    }

    #[test]
    fn rcond_bits_roundtrip_and_negate() {
        for cond in RCond::ALL {
            assert_eq!(RCond::from_bits(cond.bits()), Some(cond));
            assert_eq!(cond.negate().negate(), cond);
            for v in [-2i64, 0, 2] {
                assert_ne!(cond.eval(v as u64), cond.negate().eval(v as u64));
            }
        }
    }
}
