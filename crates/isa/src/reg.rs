//! Integer and floating-point register files.
//!
//! The integer file follows the SPARC naming convention — `%g0..%g7`
//! (globals), `%o0..%o7` (outs), `%l0..%l7` (locals), `%i0..%i7` (ins) —
//! but the file is *flat*: the prototype's register windows are not
//! modelled because none of the measured kernels spill across windows
//! (see `DESIGN.md`). `%g0` reads as zero and ignores writes, as on SPARC.

use std::fmt;

/// An integer register, one of the 32 SPARC integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of integer registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "integer register index out of range");
        Reg(index)
    }

    /// Creates a register from its index if it is in range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 32).then_some(Reg(index))
    }

    /// The register's index in the file, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 5-bit encoding field.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// Whether this is `%g0`, the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (bank, off) = match self.0 / 8 {
            0 => ('g', self.0),
            1 => ('o', self.0 - 8),
            2 => ('l', self.0 - 16),
            _ => ('i', self.0 - 24),
        };
        write!(f, "%{bank}{off}")
    }
}

/// A floating-point register holding a 64-bit double (`%f0..%f31`).
///
/// The prototype uses SPARC's even/odd register pairing for doubles; here
/// every `%fN` is a full 64-bit register, which is equivalent for the
/// kernels under study and simplifies the compiler's allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Number of floating-point registers.
    pub const COUNT: usize = 32;

    /// Creates a floating-point register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "fp register index out of range");
        FReg(index)
    }

    /// Creates a floating-point register from its index if it is in range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 32).then_some(FReg(index))
    }

    /// The register's index in the file, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 5-bit encoding field.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%f{}", self.0)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        $(
            #[doc = concat!("The `%", stringify!($name), "` register.")]
            #[allow(non_upper_case_globals)]
            pub const $name: Reg = Reg($idx);
        )*
    };
}

/// Named constants for every integer register (`reg::G0`, `reg::O0`, ...).
pub mod reg_names {
    use super::Reg;
    named_regs!(
        G0 = 0, G1 = 1, G2 = 2, G3 = 3, G4 = 4, G5 = 5, G6 = 6, G7 = 7,
        O0 = 8, O1 = 9, O2 = 10, O3 = 11, O4 = 12, O5 = 13, SP = 14, O7 = 15,
        L0 = 16, L1 = 17, L2 = 18, L3 = 19, L4 = 20, L5 = 21, L6 = 22, L7 = 23,
        I0 = 24, I1 = 25, I2 = 26, I3 = 27, I4 = 28, I5 = 29, FP = 30, I7 = 31,
    );
}

pub use reg_names as reg;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_banks() {
        assert_eq!(Reg::new(0).to_string(), "%g0");
        assert_eq!(Reg::new(7).to_string(), "%g7");
        assert_eq!(Reg::new(8).to_string(), "%o0");
        assert_eq!(Reg::new(15).to_string(), "%o7");
        assert_eq!(Reg::new(16).to_string(), "%l0");
        assert_eq!(Reg::new(24).to_string(), "%i0");
        assert_eq!(Reg::new(31).to_string(), "%i7");
    }

    #[test]
    fn g0_is_zero() {
        assert!(reg_names::G0.is_zero());
        assert!(!reg_names::O0.is_zero());
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
        assert!(FReg::try_new(31).is_some());
        assert!(FReg::try_new(32).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn freg_display() {
        assert_eq!(FReg::new(3).to_string(), "%f3");
    }
}
