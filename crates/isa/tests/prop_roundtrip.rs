//! Randomized tests: every encodable instruction round-trips through the
//! binary encoding, and every decodable word re-encodes to itself.
//!
//! Seeded with `dyser-rng` so the case set is identical on every run and
//! every machine (no external property-testing dependency).

use dyser_isa::{
    decode, encode, AluOp, Assembler, ConfigId, DyserInstr, FCond, FReg, FpOp, ICond, Instr,
    LoadKind, Op2, Port, RCond, Reg, StoreKind, VecPort,
};
use dyser_rng::Rng64;

fn rand_reg(rng: &mut Rng64) -> Reg {
    Reg::new(rng.gen_range(0u64..32) as u8)
}

fn rand_freg(rng: &mut Rng64) -> FReg {
    FReg::new(rng.gen_range(0u64..32) as u8)
}

fn rand_op2(rng: &mut Rng64) -> Op2 {
    if rng.gen_bool(0.5) {
        Op2::Reg(rand_reg(rng))
    } else {
        Op2::Imm(rng.gen_range(-4096i64..4096) as i16)
    }
}

fn pick<T: Copy>(rng: &mut Rng64, all: &[T]) -> T {
    all[rng.gen_range(0..all.len())]
}

fn rand_port(rng: &mut Rng64) -> Port {
    Port::new(rng.gen_range(0u64..32) as u8)
}

fn rand_vport(rng: &mut Rng64) -> VecPort {
    VecPort::new(rng.gen_range(0u64..8) as u8)
}

fn rand_dyser(rng: &mut Rng64) -> DyserInstr {
    match rng.gen_range(0u64..10) {
        0 => DyserInstr::Init { config: ConfigId::new(rng.gen_range(0u64..4096) as u16) },
        1 => DyserInstr::Send { port: rand_port(rng), rs: rand_reg(rng) },
        2 => DyserInstr::SendF { port: rand_port(rng), rs: rand_freg(rng) },
        3 => DyserInstr::Recv { port: rand_port(rng), rd: rand_reg(rng) },
        4 => DyserInstr::RecvF { port: rand_port(rng), rd: rand_freg(rng) },
        5 => DyserInstr::Load { port: rand_port(rng), rs1: rand_reg(rng), op2: rand_op2(rng) },
        6 => DyserInstr::Store { port: rand_port(rng), rs1: rand_reg(rng), op2: rand_op2(rng) },
        7 => DyserInstr::SendVec {
            vport: rand_vport(rng),
            base: rand_reg(rng),
            count: rng.gen_range(1u64..9) as u8,
        },
        8 => DyserInstr::RecvVec {
            vport: rand_vport(rng),
            base: rand_reg(rng),
            count: rng.gen_range(1u64..9) as u8,
        },
        _ => DyserInstr::Fence,
    }
}

fn rand_instr(rng: &mut Rng64) -> Instr {
    match rng.gen_range(0u64..19) {
        0 => Instr::Alu {
            op: pick(rng, &AluOp::ALL),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            op2: rand_op2(rng),
        },
        // Avoid the canonical NOP pattern (rd = %g0, imm = 0).
        1 => Instr::Sethi {
            rd: Reg::new(rng.gen_range(1u64..32) as u8),
            imm22: rng.gen_range(0u64..(1 << 22)) as u32,
        },
        2 => Instr::MovCc { cond: pick(rng, &ICond::ALL), rd: rand_reg(rng), op2: rand_op2(rng) },
        3 => Instr::Load {
            kind: pick(rng, &LoadKind::ALL),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            op2: rand_op2(rng),
        },
        4 => Instr::Store {
            kind: pick(rng, &StoreKind::ALL),
            rs: rand_reg(rng),
            rs1: rand_reg(rng),
            op2: rand_op2(rng),
        },
        5 => Instr::LoadF { rd: rand_freg(rng), rs1: rand_reg(rng), op2: rand_op2(rng) },
        6 => Instr::StoreF { rs: rand_freg(rng), rs1: rand_reg(rng), op2: rand_op2(rng) },
        7 => Instr::Fpu {
            op: pick(rng, &FpOp::ALL),
            rd: rand_freg(rng),
            rs1: rand_freg(rng),
            rs2: rand_freg(rng),
        },
        8 => Instr::FCmp { rs1: rand_freg(rng), rs2: rand_freg(rng) },
        9 => Instr::Branch {
            cond: pick(rng, &ICond::ALL),
            disp: rng.gen_range(-(1i64 << 21)..(1 << 21)) as i32,
        },
        10 => Instr::BranchF {
            cond: pick(rng, &FCond::ALL),
            disp: rng.gen_range(-(1i64 << 21)..(1 << 21)) as i32,
        },
        11 => Instr::BranchReg {
            cond: pick(rng, &RCond::ALL),
            rs1: rand_reg(rng),
            disp: rng.gen_range(-(1i64 << 15)..(1 << 15)) as i32,
        },
        12 => Instr::Call { disp: rng.gen_range(-(1i64 << 29)..(1 << 29)) as i32 },
        13 => Instr::Jmpl { rd: rand_reg(rng), rs1: rand_reg(rng), op2: rand_op2(rng) },
        14 => Instr::Dyser(rand_dyser(rng)),
        15 => Instr::Nop,
        16 => Instr::Halt,
        17 => Instr::SimCall { code: rng.gen_range(0u64..4096) as u16 },
        _ => Instr::Trap { code: rng.gen_range(0u64..4096) as u16 },
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x15A_0001);
    for _ in 0..2000 {
        let instr = rand_instr(&mut rng);
        let word = encode(&instr);
        let back = decode(word).expect("encoded instructions must decode");
        assert_eq!(back, instr);
    }
}

#[test]
fn decode_encode_is_identity() {
    // Not every word decodes; but whenever it does, re-encoding must
    // reproduce the exact bits that matter (we require full equality,
    // which also guarantees reserved fields are preserved as zero).
    let mut rng = Rng64::seed_from_u64(0x15A_0002);
    for _ in 0..20_000 {
        let word = rng.next_u64() as u32;
        if let Ok(instr) = decode(word) {
            let reencoded = encode(&instr);
            let back = decode(reencoded).expect("re-encoded word must decode");
            assert_eq!(back, instr);
        }
    }
}

#[test]
fn display_never_empty() {
    let mut rng = Rng64::seed_from_u64(0x15A_0003);
    for _ in 0..1000 {
        let instr = rand_instr(&mut rng);
        assert!(!instr.to_string().is_empty());
    }
}

#[test]
fn assembler_program_roundtrip() {
    // Build a straight-line program of `count` nops with one backward
    // branch; the resolved displacement must equal the label distance.
    let mut rng = Rng64::seed_from_u64(0x15A_0004);
    for _ in 0..200 {
        let count = rng.gen_range(1usize..40);
        let cond = ICond::ALL[rng.gen_range(0usize..16)];
        let mut asm = Assembler::new();
        asm.label("top");
        for _ in 0..count {
            asm.push(Instr::Nop);
        }
        asm.branch(cond, "top");
        let prog = asm.resolve().unwrap();
        match prog.last().unwrap() {
            Instr::Branch { disp, .. } => assert_eq!(*disp as i64, -(count as i64)),
            other => panic!("expected branch, got {other}"),
        }
    }
}

#[test]
fn alu_add_sub_inverse() {
    let mut rng = Rng64::seed_from_u64(0x15A_0005);
    for _ in 0..1000 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let (sum, _) = AluOp::Add.eval(a, b);
        let (diff, _) = AluOp::Sub.eval(sum, b);
        assert_eq!(diff, a);
    }
}

#[test]
fn alu_cc_comparisons_agree_with_rust() {
    let mut rng = Rng64::seed_from_u64(0x15A_0006);
    for _ in 0..1000 {
        let a = rng.next_u64() as i64;
        let b = rng.next_u64() as i64;
        let (_, icc) = AluOp::SubCc.eval(a as u64, b as u64);
        let icc = icc.unwrap();
        assert_eq!(ICond::Lt.eval(icc), a < b);
        assert_eq!(ICond::Eq.eval(icc), a == b);
        assert_eq!(ICond::Gt.eval(icc), a > b);
        assert_eq!(ICond::Ltu.eval(icc), (a as u64) < (b as u64));
    }
}
