//! Property tests: every encodable instruction round-trips through the
//! binary encoding, and every decodable word re-encodes to itself.

use dyser_isa::{
    decode, encode, AluOp, Assembler, ConfigId, DyserInstr, FCond, FReg, FpOp, ICond, Instr,
    LoadKind, Op2, Port, RCond, Reg, StoreKind, VecPort,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn arb_op2() -> impl Strategy<Value = Op2> {
    prop_oneof![arb_reg().prop_map(Op2::Reg), (-4096i16..=4095).prop_map(Op2::Imm)]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn arb_fp_op() -> impl Strategy<Value = FpOp> {
    proptest::sample::select(FpOp::ALL.to_vec())
}

fn arb_icond() -> impl Strategy<Value = ICond> {
    proptest::sample::select(ICond::ALL.to_vec())
}

fn arb_fcond() -> impl Strategy<Value = FCond> {
    proptest::sample::select(FCond::ALL.to_vec())
}

fn arb_rcond() -> impl Strategy<Value = RCond> {
    proptest::sample::select(RCond::ALL.to_vec())
}

fn arb_port() -> impl Strategy<Value = Port> {
    (0u8..32).prop_map(Port::new)
}

fn arb_vport() -> impl Strategy<Value = VecPort> {
    (0u8..8).prop_map(VecPort::new)
}

fn arb_dyser() -> impl Strategy<Value = DyserInstr> {
    prop_oneof![
        (0u16..4096).prop_map(|c| DyserInstr::Init { config: ConfigId::new(c) }),
        (arb_port(), arb_reg()).prop_map(|(port, rs)| DyserInstr::Send { port, rs }),
        (arb_port(), arb_freg()).prop_map(|(port, rs)| DyserInstr::SendF { port, rs }),
        (arb_port(), arb_reg()).prop_map(|(port, rd)| DyserInstr::Recv { port, rd }),
        (arb_port(), arb_freg()).prop_map(|(port, rd)| DyserInstr::RecvF { port, rd }),
        (arb_port(), arb_reg(), arb_op2())
            .prop_map(|(port, rs1, op2)| DyserInstr::Load { port, rs1, op2 }),
        (arb_port(), arb_reg(), arb_op2())
            .prop_map(|(port, rs1, op2)| DyserInstr::Store { port, rs1, op2 }),
        (arb_vport(), arb_reg(), 1u8..=8)
            .prop_map(|(vport, base, count)| DyserInstr::SendVec { vport, base, count }),
        (arb_vport(), arb_reg(), 1u8..=8)
            .prop_map(|(vport, base, count)| DyserInstr::RecvVec { vport, base, count }),
        Just(DyserInstr::Fence),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_op2())
            .prop_map(|(op, rd, rs1, op2)| Instr::Alu { op, rd, rs1, op2 }),
        // Avoid the canonical NOP pattern (rd = %g0, imm = 0).
        (1u8..32, 0u32..(1 << 22))
            .prop_map(|(rd, imm22)| Instr::Sethi { rd: Reg::new(rd), imm22 }),
        (arb_icond(), arb_reg(), arb_op2())
            .prop_map(|(cond, rd, op2)| Instr::MovCc { cond, rd, op2 }),
        (
            proptest::sample::select(LoadKind::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            arb_op2()
        )
            .prop_map(|(kind, rd, rs1, op2)| Instr::Load { kind, rd, rs1, op2 }),
        (
            proptest::sample::select(StoreKind::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            arb_op2()
        )
            .prop_map(|(kind, rs, rs1, op2)| Instr::Store { kind, rs, rs1, op2 }),
        (arb_freg(), arb_reg(), arb_op2()).prop_map(|(rd, rs1, op2)| Instr::LoadF { rd, rs1, op2 }),
        (arb_freg(), arb_reg(), arb_op2()).prop_map(|(rs, rs1, op2)| Instr::StoreF { rs, rs1, op2 }),
        (arb_fp_op(), arb_freg(), arb_freg(), arb_freg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Fpu { op, rd, rs1, rs2 }),
        (arb_freg(), arb_freg()).prop_map(|(rs1, rs2)| Instr::FCmp { rs1, rs2 }),
        (arb_icond(), -(1i32 << 21)..(1 << 21)).prop_map(|(cond, disp)| Instr::Branch { cond, disp }),
        (arb_fcond(), -(1i32 << 21)..(1 << 21))
            .prop_map(|(cond, disp)| Instr::BranchF { cond, disp }),
        (arb_rcond(), arb_reg(), -(1i32 << 15)..(1 << 15))
            .prop_map(|(cond, rs1, disp)| Instr::BranchReg { cond, rs1, disp }),
        (-(1i32 << 29)..(1 << 29)).prop_map(|disp| Instr::Call { disp }),
        (arb_reg(), arb_reg(), arb_op2()).prop_map(|(rd, rs1, op2)| Instr::Jmpl { rd, rs1, op2 }),
        arb_dyser().prop_map(Instr::Dyser),
        Just(Instr::Nop),
        Just(Instr::Halt),
        (0u16..4096).prop_map(|code| Instr::SimCall { code }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(&instr);
        let back = decode(word).expect("encoded instructions must decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_encode_is_identity(word in any::<u32>()) {
        // Not every word decodes; but whenever it does, re-encoding must
        // reproduce the exact bits that matter (we require full equality,
        // which also guarantees reserved fields are preserved as zero).
        if let Ok(instr) = decode(word) {
            let reencoded = encode(&instr);
            let back = decode(reencoded).expect("re-encoded word must decode");
            prop_assert_eq!(back, instr);
        }
    }

    #[test]
    fn display_never_empty(instr in arb_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }

    #[test]
    fn assembler_program_roundtrip(count in 1usize..40, seed in any::<u64>()) {
        // Build a straight-line program of `count` nops with one backward
        // branch; the resolved displacement must equal the label distance.
        let mut asm = Assembler::new();
        asm.label("top");
        for _ in 0..count {
            asm.push(Instr::Nop);
        }
        let cond = ICond::ALL[(seed % 16) as usize];
        asm.branch(cond, "top");
        let prog = asm.resolve().unwrap();
        match prog.last().unwrap() {
            Instr::Branch { disp, .. } => prop_assert_eq!(*disp as i64, -(count as i64)),
            other => prop_assert!(false, "expected branch, got {}", other),
        }
    }

    #[test]
    fn alu_add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        let (sum, _) = AluOp::Add.eval(a, b);
        let (diff, _) = AluOp::Sub.eval(sum, b);
        prop_assert_eq!(diff, a);
    }

    #[test]
    fn alu_cc_comparisons_agree_with_rust(a in any::<i64>(), b in any::<i64>()) {
        let (_, icc) = AluOp::SubCc.eval(a as u64, b as u64);
        let icc = icc.unwrap();
        prop_assert_eq!(ICond::Lt.eval(icc), a < b);
        prop_assert_eq!(ICond::Eq.eval(icc), a == b);
        prop_assert_eq!(ICond::Gt.eval(icc), a > b);
        prop_assert_eq!(ICond::Ltu.eval(icc), (a as u64) < (b as u64));
    }
}
