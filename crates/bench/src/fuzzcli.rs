//! The `repro fuzz` subcommand: drives a [`dyser_fuzz`] campaign from
//! the command line, prints findings (shrunken, with ready-to-paste
//! repros), and in `--time` mode reports fuzz throughput alongside the
//! kernel-throughput numbers in `BENCH_repro.json`.

use std::time::Instant;

use dyser_fuzz::corpus::{recipe_json, rust_repro};
use dyser_fuzz::sysprog::{run_sys_campaign, sys_recipe_json};
use dyser_fuzz::{run_campaign, CampaignConfig, CampaignReport};

use crate::timing::Timing;

/// Directory (under the working directory) where shrunken failure
/// entries are written, ready to be moved into `crates/fuzz/corpus/`.
pub const FAILURE_DIR: &str = "fuzz-failures";

/// Runs a campaign and prints the human report. Returns the process exit
/// code: zero only for a clean campaign. `batch` routes the oracle's
/// simulation legs through the lockstep batch scheduler (the default);
/// `repro fuzz --no-batch` recovers the one-case-at-a-time path.
#[must_use]
pub fn run_fuzz_cli(cases: u64, seed: u64, shrink: bool, batch: bool) -> i32 {
    let t0 = Instant::now();
    let report =
        run_campaign(&CampaignConfig { cases, seed, shrink, batch, ..CampaignConfig::default() });
    let secs = t0.elapsed().as_secs_f64();
    print_report(&report, seed, secs);

    // The syscall leg: trap-sequence programs checked for identical
    // stdout/stderr bytes, exit codes, and cycle buckets on every
    // engine. Scaled down — each case already runs six engine legs.
    let sys_cases = (cases / 4).max(25);
    let t1 = Instant::now();
    let sys_report = run_sys_campaign(sys_cases, seed);
    println!(
        "fuzz-sys: {} trap programs, seed {seed:#x}: {} ok, {} failures \
         ({:.1} Mcycles in {:.2} s)",
        sys_report.cases,
        sys_report.cases - sys_report.failures.len() as u64,
        sys_report.failures.len(),
        sys_report.sim_cycles as f64 / 1e6,
        t1.elapsed().as_secs_f64()
    );
    for f in &sys_report.failures {
        println!();
        println!("FAIL sys case {} ({}): {}", f.index, f.failure.kind, f.failure);
        let name = format!("sys-case-{}-{}.json", f.index, f.failure.kind);
        let json = sys_recipe_json(&f.shrunk, Some(f.failure.kind));
        if std::fs::create_dir_all(FAILURE_DIR)
            .and_then(|()| std::fs::write(format!("{FAILURE_DIR}/{name}"), &json))
            .is_ok()
        {
            println!("  shrunk corpus entry written to {FAILURE_DIR}/{name}");
        } else {
            println!("  shrunk recipe JSON:\n{json}");
        }
    }

    if report.clean() && sys_report.clean() {
        return 0;
    }
    if report.clean() {
        return 1;
    }
    for f in &report.failures {
        println!();
        println!(
            "FAIL case {} ({}): {}",
            f.index,
            f.failure.kind(),
            f.failure
        );
        println!("  recipe: {} IR nodes, form {:?}", f.recipe.ir_nodes(), f.recipe.form);
        if let Some(small) = &f.shrunk {
            println!("  shrunk: {} IR nodes", small.ir_nodes());
            let name = format!("case-{}-{}.json", f.index, f.failure.kind());
            let json = recipe_json(small, Some(f.failure.kind()));
            if std::fs::create_dir_all(FAILURE_DIR)
                .and_then(|()| std::fs::write(format!("{FAILURE_DIR}/{name}"), &json))
                .is_ok()
            {
                println!("  corpus entry written to {FAILURE_DIR}/{name}");
            }
            println!("  ready-to-paste test:\n{}", rust_repro(small, &format!("case_{}", f.index)));
        } else {
            println!("  (not shrunk; rerun with --shrink)");
            println!("  recipe JSON:\n{}", recipe_json(&f.recipe, Some(f.failure.kind())));
        }
    }
    1
}

fn print_report(report: &CampaignReport, seed: u64, secs: f64) {
    let ok = report.cases - report.failures.len() as u64;
    println!(
        "fuzz: {} cases, seed {seed:#x}: {ok} ok ({} accelerated, {} invalid-config rejected), \
         {} failures",
        report.cases,
        report.accelerated,
        report.invalid_config,
        report.failures.len()
    );
    println!(
        "      {:.1} cases/s, {:.1} Mcycles simulated in {:.2} s",
        report.cases as f64 / secs.max(1e-9),
        report.sim_cycles as f64 / 1e6,
        secs
    );
}

/// Times a fuzz campaign for `--time` mode: one untimed warmup (fills
/// the compile cache), then `reps` measured repetitions of the same
/// campaign. Returns the [`Timing`] row plus the cases-per-second figure
/// for the JSON report.
///
/// # Panics
///
/// Panics if the campaign is not clean — throughput of a failing fuzz
/// run is not a meaningful benchmark.
#[must_use]
pub fn time_fuzz(cases: u64, seed: u64, reps: usize) -> (Timing, f64) {
    let reps = reps.max(1);
    let cfg = CampaignConfig { cases, seed, shrink: false, ..CampaignConfig::default() };
    let warmup = run_campaign(&cfg);
    assert!(
        warmup.clean(),
        "fuzz campaign has failures; fix them before timing (run `repro fuzz`)"
    );
    let mut walls = Vec::with_capacity(reps);
    let mut cycles = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_campaign(&cfg);
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
        cycles = report.sim_cycles;
    }
    walls.sort_by(f64::total_cmp);
    let mid = walls.len() / 2;
    let median =
        if walls.len() % 2 == 0 { (walls[mid - 1] + walls[mid]) / 2.0 } else { walls[mid] };
    let throughput = if median > 0.0 { cycles as f64 / 1e6 / (median / 1e3) } else { 0.0 };
    let cases_per_sec = if median > 0.0 { cases as f64 / (median / 1e3) } else { 0.0 };
    (
        Timing {
            id: "fuzz".into(),
            wall_ms_median: median,
            wall_ms_min: walls[0],
            sim_cycles: cycles,
            mcycles_per_sec: throughput,
            config_only: false,
        },
        cases_per_sec,
    )
}
