//! A plain-text table renderer for experiment output.

use std::fmt;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct ExpTable {
    /// Experiment id (`"E2"`) and title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
    /// Machine-readable columns appended only to the CSV rendering (the
    /// human-facing `Display` table stays unchanged).
    csv_extra_headers: Vec<String>,
    /// Per-row extra cells, parallel to `rows`; rows added without extras
    /// render as empty cells.
    csv_extra_rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            csv_extra_headers: Vec::new(),
            csv_extra_rows: Vec::new(),
        }
    }

    /// Declares extra columns that appear only in [`ExpTable::to_csv`]
    /// output, after the regular columns. Call before adding rows that
    /// carry extras.
    pub fn csv_extra_headers(&mut self, headers: &[&str]) {
        self.csv_extra_headers = headers.iter().map(|s| (*s).to_owned()).collect();
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self.csv_extra_rows.push(Vec::new());
    }

    /// Appends a row together with its CSV-only extra cells.
    ///
    /// # Panics
    ///
    /// Panics if either arity differs from the corresponding headers.
    pub fn row_with_extras(&mut self, cells: Vec<String>, extras: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        assert_eq!(extras.len(), self.csv_extra_headers.len(), "extras arity mismatch");
        self.rows.push(cells);
        self.csv_extra_rows.push(extras);
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as CSV (headers + rows; notes become `#` comments).
    ///
    /// Cells containing commas, quotes, or line breaks are quoted per RFC
    /// 4180, so multi-line cells survive a round trip through any CSV
    /// reader instead of corrupting the row structure.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r')
            {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let emit = |s: &mut String, cells: &[String], extras: &[String]| {
            let mut fields: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            if !self.csv_extra_headers.is_empty() {
                fields.extend(
                    (0..self.csv_extra_headers.len())
                        .map(|i| extras.get(i).map_or(String::new(), |c| escape(c))),
                );
            }
            s.push_str(&fields.join(","));
            s.push('\n');
        };
        let mut s = String::new();
        for note in &self.notes {
            s.push_str(&format!("# {note}\n"));
        }
        emit(&mut s, &self.headers, &self.csv_extra_headers);
        for (row, extras) in self.rows.iter().zip(&self.csv_extra_rows) {
            emit(&mut s, row, extras);
        }
        s
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExpTable::new("E0: demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("longer"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn csv_escapes_and_comments() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.note("hello");
        let csv = t.to_csv();
        assert!(csv.starts_with("# hello\n"));
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn csv_quotes_line_breaks() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["multi\nline".into(), "cr\rcell".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"multi\nline\",\"cr\rcell\""), "{csv}");
        // The quoted row must still parse as exactly one record: the only
        // unquoted newline after the header terminates it.
        let body = csv.split_once('\n').unwrap().1;
        assert_eq!(body.matches('\n').count(), 2, "{body:?}");
    }

    #[test]
    fn csv_extras_appear_only_in_csv() {
        let mut t = ExpTable::new("t", &["a"]);
        t.csv_extra_headers(&["x", "y"]);
        t.row_with_extras(vec!["1".into()], vec!["2".into(), "3".into()]);
        t.row(vec!["4".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("a,x,y\n"), "{csv}");
        assert!(csv.contains("1,2,3\n"), "{csv}");
        assert!(csv.contains("4,,\n"), "{csv}");
        let text = t.to_string();
        assert!(!text.contains('x'), "Display must not show extras: {text}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
