//! A plain-text table renderer for experiment output.

use std::fmt;
use std::str::FromStr;

/// A typed failure extracting data back out of an [`ExpTable`].
///
/// Post-processing passes (geomean extraction, sweep aggregation, the
/// `dse` accuracy report) read rendered cells back as numbers; these used
/// to be `unwrap()` chains that aborted a whole sweep on one malformed
/// row. The accessors below return this error instead so the caller can
/// skip or report the row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// No row matched the requested key.
    NoSuchRow {
        /// The key column searched.
        column: String,
        /// The key value searched for.
        value: String,
    },
    /// The header named in a lookup does not exist.
    NoSuchColumn {
        /// The requested header.
        column: String,
    },
    /// A row index beyond the table.
    RowOutOfRange {
        /// The requested row index.
        row: usize,
        /// Rows in the table.
        len: usize,
    },
    /// A cell that failed to parse as the requested type.
    BadCell {
        /// Row index of the offending cell.
        row: usize,
        /// Header of the offending cell.
        column: String,
        /// The raw cell contents.
        cell: String,
    },
    /// A row whose arity does not match the headers.
    ArityMismatch {
        /// Cells supplied.
        got: usize,
        /// Cells expected (header count).
        expected: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::NoSuchRow { column, value } => {
                write!(f, "no row with {column} = {value:?}")
            }
            TableError::NoSuchColumn { column } => write!(f, "no column {column:?}"),
            TableError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range (table has {len})")
            }
            TableError::BadCell { row, column, cell } => {
                write!(f, "cell [{row}].{column} = {cell:?} is not a number")
            }
            TableError::ArityMismatch { got, expected } => {
                write!(f, "row has {got} cells but the table has {expected} headers")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct ExpTable {
    /// Experiment id (`"E2"`) and title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
    /// Machine-readable columns appended only to the CSV rendering (the
    /// human-facing `Display` table stays unchanged).
    csv_extra_headers: Vec<String>,
    /// Per-row extra cells, parallel to `rows`; rows added without extras
    /// render as empty cells.
    csv_extra_rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            csv_extra_headers: Vec::new(),
            csv_extra_rows: Vec::new(),
        }
    }

    /// Declares extra columns that appear only in [`ExpTable::to_csv`]
    /// output, after the regular columns. Call before adding rows that
    /// carry extras.
    pub fn csv_extra_headers(&mut self, headers: &[&str]) {
        self.csv_extra_headers = headers.iter().map(|s| (*s).to_owned()).collect();
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self.csv_extra_rows.push(Vec::new());
    }

    /// Appends a row together with its CSV-only extra cells.
    ///
    /// # Panics
    ///
    /// Panics if either arity differs from the corresponding headers.
    pub fn row_with_extras(&mut self, cells: Vec<String>, extras: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        assert_eq!(extras.len(), self.csv_extra_headers.len(), "extras arity mismatch");
        self.rows.push(cells);
        self.csv_extra_rows.push(extras);
    }

    /// Appends a row, returning a typed error instead of panicking on an
    /// arity mismatch (for rows assembled from sweep data rather than
    /// literal cell lists).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ArityMismatch`] if the arity differs from
    /// the headers.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<(), TableError> {
        if cells.len() != self.headers.len() {
            return Err(TableError::ArityMismatch {
                got: cells.len(),
                expected: self.headers.len(),
            });
        }
        self.rows.push(cells);
        self.csv_extra_rows.push(Vec::new());
        Ok(())
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The index of the named header column.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NoSuchColumn`] if no header matches.
    pub fn column(&self, column: &str) -> Result<usize, TableError> {
        self.headers
            .iter()
            .position(|h| h == column)
            .ok_or_else(|| TableError::NoSuchColumn { column: column.to_owned() })
    }

    /// The index of the first row whose `key` column equals `value`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NoSuchColumn`] or [`TableError::NoSuchRow`].
    pub fn find_row(&self, key: &str, value: &str) -> Result<usize, TableError> {
        let col = self.column(key)?;
        self.rows
            .iter()
            .position(|r| r[col] == value)
            .ok_or_else(|| TableError::NoSuchRow { column: key.to_owned(), value: value.to_owned() })
    }

    /// The raw cell at (`row`, `column`-by-header-name).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfRange`] or [`TableError::NoSuchColumn`].
    pub fn cell(&self, row: usize, column: &str) -> Result<&str, TableError> {
        let col = self.column(column)?;
        let r = self
            .rows
            .get(row)
            .ok_or(TableError::RowOutOfRange { row, len: self.rows.len() })?;
        Ok(&r[col])
    }

    /// Parses the cell at (`row`, `column`) as `T`, tolerating the
    /// renderers' decorations: a trailing `x` (speedups), a trailing `%`,
    /// and surrounding whitespace.
    ///
    /// # Errors
    ///
    /// Returns the lookup errors of [`ExpTable::cell`], or
    /// [`TableError::BadCell`] if the undecorated cell does not parse.
    pub fn parse_cell<T: FromStr>(&self, row: usize, column: &str) -> Result<T, TableError> {
        let raw = self.cell(row, column)?;
        let trimmed = raw.trim().trim_end_matches(['x', '%']);
        trimmed.parse().map_err(|_| TableError::BadCell {
            row,
            column: column.to_owned(),
            cell: raw.to_owned(),
        })
    }

    /// Renders the table as CSV (headers + rows; notes become `#` comments).
    ///
    /// Cells containing commas, quotes, or line breaks are quoted per RFC
    /// 4180, so multi-line cells survive a round trip through any CSV
    /// reader instead of corrupting the row structure.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r')
            {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let emit = |s: &mut String, cells: &[String], extras: &[String]| {
            let mut fields: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            if !self.csv_extra_headers.is_empty() {
                fields.extend(
                    (0..self.csv_extra_headers.len())
                        .map(|i| extras.get(i).map_or(String::new(), |c| escape(c))),
                );
            }
            s.push_str(&fields.join(","));
            s.push('\n');
        };
        let mut s = String::new();
        for note in &self.notes {
            s.push_str(&format!("# {note}\n"));
        }
        emit(&mut s, &self.headers, &self.csv_extra_headers);
        for (row, extras) in self.rows.iter().zip(&self.csv_extra_rows) {
            emit(&mut s, row, extras);
        }
        s
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExpTable::new("E0: demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("longer"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn csv_escapes_and_comments() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.note("hello");
        let csv = t.to_csv();
        assert!(csv.starts_with("# hello\n"));
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn csv_quotes_line_breaks() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["multi\nline".into(), "cr\rcell".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"multi\nline\",\"cr\rcell\""), "{csv}");
        // The quoted row must still parse as exactly one record: the only
        // unquoted newline after the header terminates it.
        let body = csv.split_once('\n').unwrap().1;
        assert_eq!(body.matches('\n').count(), 2, "{body:?}");
    }

    #[test]
    fn csv_extras_appear_only_in_csv() {
        let mut t = ExpTable::new("t", &["a"]);
        t.csv_extra_headers(&["x", "y"]);
        t.row_with_extras(vec!["1".into()], vec!["2".into(), "3".into()]);
        t.row(vec!["4".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("a,x,y\n"), "{csv}");
        assert!(csv.contains("1,2,3\n"), "{csv}");
        assert!(csv.contains("4,,\n"), "{csv}");
        let text = t.to_string();
        assert!(!text.contains('x'), "Display must not show extras: {text}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn try_row_returns_typed_arity_error() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        assert_eq!(
            t.try_row(vec!["only-one".into()]),
            Err(TableError::ArityMismatch { got: 1, expected: 2 })
        );
        assert!(t.try_row(vec!["1".into(), "2".into()]).is_ok());
        assert_eq!(t.rows.len(), 1, "the failed row must not be half-applied");
    }

    #[test]
    fn typed_cell_extraction() {
        let mut t = ExpTable::new("t", &["kernel", "speedup", "share"]);
        t.row(vec!["poly6".into(), "3.25x".into(), "42%".into()]);
        t.row(vec!["saxpy".into(), "oops".into(), "7".into()]);

        assert_eq!(t.find_row("kernel", "saxpy"), Ok(1));
        assert_eq!(t.cell(0, "speedup"), Ok("3.25x"));
        assert_eq!(t.parse_cell::<f64>(0, "speedup"), Ok(3.25));
        assert_eq!(t.parse_cell::<u64>(0, "share"), Ok(42));

        assert_eq!(
            t.find_row("kernel", "fir4"),
            Err(TableError::NoSuchRow { column: "kernel".into(), value: "fir4".into() })
        );
        assert_eq!(
            t.cell(0, "nope"),
            Err(TableError::NoSuchColumn { column: "nope".into() })
        );
        assert_eq!(t.cell(9, "kernel"), Err(TableError::RowOutOfRange { row: 9, len: 2 }));
        let bad = t.parse_cell::<f64>(1, "speedup");
        assert_eq!(
            bad,
            Err(TableError::BadCell { row: 1, column: "speedup".into(), cell: "oops".into() })
        );
        // Every variant renders a human-readable message (CLI exit paths).
        assert!(bad.unwrap_err().to_string().contains("oops"));
    }
}
