//! A plain-text table renderer for experiment output.

use std::fmt;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct ExpTable {
    /// Experiment id (`"E2"`) and title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as CSV (headers + rows; notes become `#` comments).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut s = String::new();
        for note in &self.notes {
            s.push_str(&format!("# {note}\n"));
        }
        s.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExpTable::new("E0: demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("longer"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn csv_escapes_and_comments() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.note("hello");
        let csv = t.to_csv();
        assert!(csv.starts_with("# hello\n"));
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExpTable::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
