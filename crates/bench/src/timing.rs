//! Self-timing mode: wall-clock and simulated-cycle throughput per
//! experiment, recorded to `BENCH_repro.json` so harness speed is
//! tracked across changes (`repro --time`).

use std::fmt::Write as _;
use std::time::Instant;

use dyser_core::simulated_cycles;

use crate::experiments::run_experiment;

/// Pre-change reference medians in milliseconds — `repro e2` (the micro
/// suite) and `repro all` measured on the same machine with the same
/// warmup-plus-median scheme before the allocation-free engine, compile
/// cache, and parallel harness landed. Kept in the report so every
/// `BENCH_repro.json` carries its point of comparison.
pub const PRE_CHANGE_E2_MS: f64 = 70.0;
/// Pre-change `repro all` median (see [`PRE_CHANGE_E2_MS`]).
pub const PRE_CHANGE_ALL_MS: f64 = 1940.0;

/// One experiment's timing measurement.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Experiment id (`e1`..`e10`, `ablation`).
    pub id: String,
    /// Median wall-clock over the measured repetitions.
    pub wall_ms_median: f64,
    /// Fastest repetition.
    pub wall_ms_min: f64,
    /// Simulated cycles per repetition (identical across repetitions —
    /// the experiments are deterministic).
    pub sim_cycles: u64,
    /// Simulation throughput at the median wall time.
    pub mcycles_per_sec: f64,
}

/// Times each experiment: one untimed warmup run (fills the compile
/// cache and pages the binary in), then `reps` measured repetitions;
/// the median is the headline number.
///
/// # Panics
///
/// Panics on unknown ids or experiment failures, like
/// [`run_experiment`].
pub fn time_experiments(ids: &[&str], reps: usize) -> Vec<Timing> {
    let reps = reps.max(1);
    ids.iter()
        .map(|&id| {
            run_experiment(id);
            let mut walls = Vec::with_capacity(reps);
            let mut cycles = 0;
            for _ in 0..reps {
                let c0 = simulated_cycles();
                let t0 = Instant::now();
                run_experiment(id);
                walls.push(t0.elapsed().as_secs_f64() * 1e3);
                cycles = simulated_cycles() - c0;
            }
            walls.sort_by(f64::total_cmp);
            let median = walls[walls.len() / 2];
            let throughput =
                if median > 0.0 { cycles as f64 / 1e6 / (median / 1e3) } else { 0.0 };
            Timing {
                id: id.to_owned(),
                wall_ms_median: median,
                wall_ms_min: walls[0],
                sim_cycles: cycles,
                mcycles_per_sec: throughput,
            }
        })
        .collect()
}

/// Renders the measurements as the `BENCH_repro.json` document.
///
/// The `reference` block restates the pre-change medians and, when the
/// matching ids were timed, the improvement factors — the numbers the
/// acceptance gate and future PRs compare against.
#[must_use]
pub fn timing_json(timings: &[Timing], reps: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"repro timing mode\",");
    let _ = writeln!(s, "  \"reps\": {reps},");
    s.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"wall_ms_median\": {:.3}, \"wall_ms_min\": {:.3}, \
             \"sim_cycles\": {}, \"mcycles_per_sec\": {:.3}}}",
            t.id, t.wall_ms_median, t.wall_ms_min, t.sim_cycles, t.mcycles_per_sec
        );
        s.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let total: f64 = timings.iter().map(|t| t.wall_ms_median).sum();
    let _ = writeln!(s, "  \"total_wall_ms_median\": {total:.3},");
    s.push_str("  \"reference\": {\n");
    s.push_str(
        "    \"note\": \"pre-change medians, same machine and repetition scheme; \
         improvement = pre-change / measured\",\n",
    );
    let _ = writeln!(s, "    \"e2_pre_change_ms\": {PRE_CHANGE_E2_MS:.1},");
    let _ = write!(s, "    \"all_pre_change_ms\": {PRE_CHANGE_ALL_MS:.1}");
    if let Some(e2) = timings.iter().find(|t| t.id == "e2") {
        let _ = write!(s, ",\n    \"e2_improvement\": {:.2}", PRE_CHANGE_E2_MS / e2.wall_ms_median);
    }
    if crate::EXPERIMENT_IDS.iter().all(|id| timings.iter().any(|t| t.id == *id)) {
        let _ = write!(s, ",\n    \"all_improvement\": {:.2}", PRE_CHANGE_ALL_MS / total);
    }
    s.push_str("\n  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measures_and_renders_json() {
        let timings = time_experiments(&["e1"], 1);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].id, "e1");
        assert!(timings[0].wall_ms_median >= timings[0].wall_ms_min);
        let json = timing_json(&timings, 1);
        assert!(json.contains("\"id\": \"e1\""));
        assert!(json.contains("\"e2_pre_change_ms\""));
        assert!(!json.contains("e2_improvement"), "e2 was not timed");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }
}
