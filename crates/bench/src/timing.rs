//! Self-timing mode: wall-clock and simulated-cycle throughput per
//! experiment, recorded to `BENCH_repro.json` so harness speed is
//! tracked across changes (`repro --time`).

use std::fmt::Write as _;
use std::time::Instant;

use dyser_core::{
    cycle_bucket_totals, default_workers, run_kernel_batch, simulated_cycles, KernelJob, RunConfig,
};
use dyser_sparc::CycleBucket;

use crate::experiments::{run_experiment, SEED};

/// Pre-change reference medians in milliseconds — `repro e2` (the micro
/// suite) and `repro all` measured on the same machine with the same
/// warmup-plus-median scheme before the allocation-free engine, compile
/// cache, and parallel harness landed. Kept in the report so every
/// `BENCH_repro.json` carries its point of comparison.
pub const PRE_CHANGE_E2_MS: f64 = 70.0;
/// Pre-change `repro all` median (see [`PRE_CHANGE_E2_MS`]).
pub const PRE_CHANGE_ALL_MS: f64 = 1940.0;

/// The medians a timing report compares itself against.
#[derive(Debug, Clone, PartialEq)]
pub struct Reference {
    /// Reference `repro e2` median in milliseconds.
    pub e2_ms: f64,
    /// Reference `repro all` median in milliseconds.
    pub all_ms: f64,
    /// Where the medians came from: `"reference"` for the built-in
    /// pre-change constants, `"previous-run"` when read back from an
    /// earlier `BENCH_repro.json` on this machine.
    pub machine: String,
}

impl Default for Reference {
    fn default() -> Self {
        Reference {
            e2_ms: PRE_CHANGE_E2_MS,
            all_ms: PRE_CHANGE_ALL_MS,
            machine: "reference".into(),
        }
    }
}

/// Extracts the number following `"key":` in a hand-written JSON
/// document. Good enough for the fixed shape `timing_json` emits; not a
/// general JSON parser.
fn json_number_after(text: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"{key}\":"))?;
    let rest = text[at..].split_once(':')?.1;
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Loads reference medians from a previous `BENCH_repro.json` at `path`,
/// so successive `repro --time` runs on one machine compare against their
/// own history rather than the built-in pre-change constants.
///
/// Falls back to [`Reference::default`] (labelled `"reference"`) when the
/// file is absent or either median cannot be extracted. The `repro all`
/// median is only trusted when the previous run timed the full sweep
/// (its report carries `total_wall_ms_median` over every experiment,
/// marked by the `all_improvement` key).
#[must_use]
pub fn load_reference(path: &str) -> Reference {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Reference::default();
    };
    let e2 = text
        .find("\"id\": \"e2\"")
        .and_then(|at| json_number_after(&text[at..], "wall_ms_median"));
    let all = if text.contains("\"all_improvement\"") {
        json_number_after(&text, "total_wall_ms_median")
    } else {
        None
    };
    match (e2, all) {
        (Some(e2_ms), Some(all_ms)) if e2_ms > 0.0 && all_ms > 0.0 => {
            Reference { e2_ms, all_ms, machine: "previous-run".into() }
        }
        _ => Reference::default(),
    }
}

/// One experiment's timing measurement.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Experiment id (`e1`..`e10`, `ablation`).
    pub id: String,
    /// Median wall-clock over the measured repetitions.
    pub wall_ms_median: f64,
    /// Fastest repetition.
    pub wall_ms_min: f64,
    /// Simulated cycles per repetition (identical across repetitions —
    /// the experiments are deterministic).
    pub sim_cycles: u64,
    /// Simulation throughput at the median wall time.
    pub mcycles_per_sec: f64,
    /// The experiment ran no simulation (e.g. `e1` renders tables from
    /// static configurations), so cycle counts and throughput are
    /// structurally zero rather than a measurement.
    pub config_only: bool,
}

/// Times each experiment: one untimed warmup run (fills the compile
/// cache and pages the binary in), then `reps` measured repetitions;
/// the median is the headline number.
///
/// The cross-table result memo is emptied before the warmup and before
/// every repetition: a timed run must measure real simulation, not a
/// replay of a previous repetition's cached results. (Hits *within* one
/// experiment still count — that reuse is genuine harness speed.)
///
/// # Panics
///
/// Panics on unknown ids or experiment failures, like
/// [`run_experiment`].
pub fn time_experiments(ids: &[&str], reps: usize) -> Vec<Timing> {
    let reps = reps.max(1);
    ids.iter()
        .map(|&id| {
            crate::experiments::clear_result_memo();
            run_experiment(id);
            let mut walls = Vec::with_capacity(reps);
            let mut cycles = 0;
            for _ in 0..reps {
                crate::experiments::clear_result_memo();
                let c0 = simulated_cycles();
                let t0 = Instant::now();
                run_experiment(id);
                walls.push(t0.elapsed().as_secs_f64() * 1e3);
                cycles = simulated_cycles() - c0;
            }
            walls.sort_by(f64::total_cmp);
            let median = median_sorted(&walls);
            let throughput =
                if median > 0.0 { cycles as f64 / 1e6 / (median / 1e3) } else { 0.0 };
            Timing {
                id: id.to_owned(),
                wall_ms_median: median,
                wall_ms_min: walls[0],
                sim_cycles: cycles,
                mcycles_per_sec: throughput,
                config_only: cycles == 0,
            }
        })
        .collect()
}

/// Median of an ascending-sorted sample; even counts have no middle
/// sample, so the two central ones are averaged like any textbook
/// median.
fn median_sorted(walls: &[f64]) -> f64 {
    let mid = walls.len() / 2;
    if walls.len() % 2 == 0 { (walls[mid - 1] + walls[mid]) / 2.0 } else { walls[mid] }
}

/// Batched-lockstep throughput: every suite kernel at a quarter of its
/// default size submitted as ONE ragged mixed-kernel batch through
/// [`run_kernel_batch`], one untimed warmup (fills the compile cache),
/// then `reps` measured repetitions. Returns simulated Mcycles per
/// second at the median wall time — the `batch_mcycles_per_sec` figure
/// in `BENCH_repro.json`, tracking the lockstep engine's throughput
/// alongside the per-experiment serial numbers.
///
/// # Panics
///
/// Panics if any suite kernel fails verification under batching — that
/// is a correctness bug, not a timing artifact.
#[must_use]
pub fn time_batch(reps: usize) -> f64 {
    let reps = reps.max(1);
    let jobs: Vec<KernelJob> = dyser_workloads::suite()
        .iter()
        .map(|k| {
            let n = (k.default_n / 4).max(8) / 4 * 4;
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            (k.case(n, SEED), config)
        })
        .collect();
    let run = |jobs: &[KernelJob]| {
        for result in run_kernel_batch(jobs, default_workers()) {
            result.expect("suite kernel verifies under batching");
        }
    };
    run(&jobs);
    let mut walls = Vec::with_capacity(reps);
    let mut cycles = 0;
    for _ in 0..reps {
        let c0 = simulated_cycles();
        let t0 = Instant::now();
        run(&jobs);
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
        cycles = simulated_cycles() - c0;
    }
    walls.sort_by(f64::total_cmp);
    let median = median_sorted(&walls);
    if median > 0.0 { cycles as f64 / 1e6 / (median / 1e3) } else { 0.0 }
}

/// Renders the measurements as the `BENCH_repro.json` document.
///
/// The `reference` block restates `reference`'s medians and, when the
/// matching ids were timed, the improvement factors — the numbers the
/// acceptance gate and future PRs compare against. The `cycle_buckets`
/// block snapshots the process-wide cycle attribution accumulated across
/// every simulated run so far (see [`cycle_bucket_totals`]).
/// `fuzz_cases_per_sec` (from `repro fuzz --time`) tracks differential
/// fuzz throughput alongside kernel throughput; `batch_mcycles_per_sec`
/// (from [`time_batch`]) tracks the lockstep engine's ragged-batch
/// throughput.
#[must_use]
pub fn timing_json(
    timings: &[Timing],
    reps: usize,
    reference: &Reference,
    fuzz_cases_per_sec: Option<f64>,
    batch_mcycles_per_sec: Option<f64>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"repro timing mode\",");
    let _ = writeln!(s, "  \"reps\": {reps},");
    s.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        if t.config_only {
            // No simulation ran; a zero throughput would read as a
            // measurement, so say what the experiment actually is.
            let _ = write!(
                s,
                "    {{\"id\": \"{}\", \"wall_ms_median\": {:.3}, \"wall_ms_min\": {:.3}, \
                 \"config_only\": true}}",
                t.id, t.wall_ms_median, t.wall_ms_min
            );
        } else {
            let _ = write!(
                s,
                "    {{\"id\": \"{}\", \"wall_ms_median\": {:.3}, \"wall_ms_min\": {:.3}, \
                 \"sim_cycles\": {}, \"mcycles_per_sec\": {:.3}}}",
                t.id, t.wall_ms_median, t.wall_ms_min, t.sim_cycles, t.mcycles_per_sec
            );
        }
        s.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let total: f64 = timings.iter().map(|t| t.wall_ms_median).sum();
    let _ = writeln!(s, "  \"total_wall_ms_median\": {total:.3},");
    if let Some(cps) = fuzz_cases_per_sec {
        let _ = writeln!(s, "  \"fuzz_cases_per_sec\": {cps:.1},");
    }
    if let Some(mps) = batch_mcycles_per_sec {
        let _ = writeln!(s, "  \"batch_mcycles_per_sec\": {mps:.3},");
    }
    let acct = cycle_bucket_totals();
    s.push_str("  \"cycle_buckets\": {\n");
    for bucket in CycleBucket::ALL {
        let _ = writeln!(s, "    \"{}\": {},", bucket.label(), acct.get(bucket));
    }
    let _ = writeln!(s, "    \"total\": {}", acct.total_cycles);
    s.push_str("  },\n");
    s.push_str("  \"reference\": {\n");
    s.push_str(
        "    \"note\": \"reference medians, same repetition scheme; \
         improvement = reference / measured\",\n",
    );
    let _ = writeln!(s, "    \"machine\": \"{}\",", reference.machine);
    let _ = writeln!(s, "    \"e2_pre_change_ms\": {:.1},", reference.e2_ms);
    let _ = write!(s, "    \"all_pre_change_ms\": {:.1}", reference.all_ms);
    if let Some(e2) = timings.iter().find(|t| t.id == "e2") {
        let _ = write!(s, ",\n    \"e2_improvement\": {:.2}", reference.e2_ms / e2.wall_ms_median);
    }
    if crate::EXPERIMENT_IDS.iter().all(|id| timings.iter().any(|t| t.id == *id)) {
        let _ = write!(s, ",\n    \"all_improvement\": {:.2}", reference.all_ms / total);
    }
    s.push_str("\n  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measures_and_renders_json() {
        let timings = time_experiments(&["e1"], 1);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].id, "e1");
        assert!(timings[0].wall_ms_median >= timings[0].wall_ms_min);
        assert!(timings[0].config_only, "e1 renders static tables; it simulates nothing");
        let json = timing_json(&timings, 1, &Reference::default(), None, None);
        assert!(!json.contains("fuzz_cases_per_sec"), "no fuzz timing was supplied");
        assert!(!json.contains("batch_mcycles_per_sec"), "no batch timing was supplied");
        assert!(json.contains("\"id\": \"e1\""));
        assert!(json.contains("\"config_only\": true"));
        assert!(
            !json.contains("\"mcycles_per_sec\": 0.000"),
            "config-only experiments must not report a zero throughput: {json}"
        );
        assert!(json.contains("\"e2_pre_change_ms\""));
        assert!(json.contains("\"machine\": \"reference\""));
        assert!(json.contains("\"cycle_buckets\""));
        assert!(json.contains("\"core-compute\""));
        assert!(!json.contains("e2_improvement"), "e2 was not timed");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        dyser_trace::validate_json(&json).expect("report is well-formed JSON");
    }

    #[test]
    fn even_rep_median_averages_middle_samples() {
        // Indirect check via a quick two-rep timing: the median must lie
        // between (inclusive) the min and the max sample.
        let timings = time_experiments(&["e1"], 2);
        let t = &timings[0];
        assert!(t.wall_ms_median >= t.wall_ms_min);
    }

    #[test]
    fn reference_round_trips_through_the_report() {
        let all_ids: Vec<&str> = crate::EXPERIMENT_IDS.to_vec();
        let timings: Vec<Timing> = all_ids
            .iter()
            .enumerate()
            .map(|(i, id)| Timing {
                id: (*id).to_owned(),
                wall_ms_median: 10.0 + i as f64,
                wall_ms_min: 9.0,
                sim_cycles: 1000,
                mcycles_per_sec: 1.0,
                config_only: false,
            })
            .collect();
        let json = timing_json(&timings, 3, &Reference::default(), Some(123.45), Some(42.5));
        assert!(json.contains("\"fuzz_cases_per_sec\": 123.5"), "{json}");
        assert!(json.contains("\"batch_mcycles_per_sec\": 42.500"), "{json}");
        let dir = std::env::temp_dir().join("dyser-timing-roundtrip");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_repro.json");
        std::fs::write(&path, &json).expect("write report");
        let reloaded = load_reference(path.to_str().expect("utf8 path"));
        assert_eq!(reloaded.machine, "previous-run");
        assert!((reloaded.e2_ms - 11.0).abs() < 1e-6, "{reloaded:?}");
        let total: f64 = timings.iter().map(|t| t.wall_ms_median).sum();
        assert!((reloaded.all_ms - total).abs() < 1e-3, "{reloaded:?}");
        assert_eq!(load_reference("/nonexistent/BENCH_repro.json"), Reference::default());
    }
}
