//! The experiments: E1–E10, each regenerating one reconstructed
//! table/figure of the evaluation (see `DESIGN.md` for the index).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use dyser_compiler::LoopShape;
use dyser_core::{
    backend_override, default_workers, run_kernel, run_kernels, run_program, speed_stat_totals,
    trace_capacity, KernelJob, KernelResult, RunConfig,
};
use dyser_energy::EnergyModel;
use dyser_fabric::{FabricGeometry, FuKind, StructuralStats};
use dyser_sparc::{CycleBucket, StallCause};
use dyser_workloads::{manual, suite, Category, Kernel};

use crate::table::ExpTable;

/// All experiment ids, in order (`ablation` is this reproduction's own
/// design-choice study, not a paper exhibit; `p1`..`p3` are the
/// whole-program workloads run through the syscall-emulation layer).
pub const EXPERIMENT_IDS: [&str; 14] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "p1", "p2", "p3", "ablation"];

/// The seed used for all experiment inputs.
pub const SEED: u64 = 0xD75E;

/// Size scale: 1.0 = the full evaluation sizes used by `repro`;
/// smaller values shrink inputs for the Criterion benches.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    fn n(&self, full: usize) -> usize {
        let scaled = ((full as f64) * self.0) as usize;
        scaled.max(8) / 4 * 4 // keep it a positive multiple of 4
    }
}

/// Runs one experiment by id at full size.
///
/// # Panics
///
/// Panics on an unknown id (callers use [`EXPERIMENT_IDS`]) or if any
/// kernel fails verification — a failed experiment is a bug, not a result.
pub fn run_experiment(id: &str) -> ExpTable {
    run_experiment_scaled(id, Scale(1.0))
}

/// Runs one experiment at a given size scale.
///
/// # Panics
///
/// Panics on unknown ids or verification failures.
pub fn run_experiment_scaled(id: &str, scale: Scale) -> ExpTable {
    match id {
        "e1" => e1_fabric_resources(),
        "e2" => e2_micro_speedup(scale),
        "e3" => e3_suite_speedup(scale),
        "e4" => e4_manual_vs_compiler(scale),
        "e5" => e5_instruction_reduction(scale),
        "e6" => e6_energy(scale),
        "e7" => e7_config_overhead(scale),
        "e8" => e8_control_flow_shapes(scale),
        "e9" => e9_fabric_sweep(scale),
        "e10" => e10_integration_overhead(scale),
        "p1" | "p2" | "p3" => program_experiment(id, scale),
        "ablation" => ablation(scale),
        other => panic!("unknown experiment `{other}`"),
    }
}

/// Memoized per-kernel simulation results, shared by every experiment in
/// one process. Several tables re-simulate the same (kernel, size,
/// config) job — e3/e5/e6 each sweep the full suite identically — so one
/// `repro all` invocation pays for each distinct simulation once and the
/// later tables replay the cached [`KernelResult`]. The experiments are
/// deterministic, so a replay is bit-identical to a re-run.
static RESULT_MEMO: OnceLock<Mutex<HashMap<String, KernelResult>>> = OnceLock::new();
static RESULT_HITS: AtomicU64 = AtomicU64::new(0);
static RESULT_MISSES: AtomicU64 = AtomicU64::new(0);

fn result_memo() -> &'static Mutex<HashMap<String, KernelResult>> {
    RESULT_MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The memo key: everything that can change a run's outcome. The
/// process-wide backend override is part of the effective configuration
/// even though it never appears in the `RunConfig`.
fn memo_key(kernel: &str, n: usize, config: &RunConfig) -> String {
    format!("{kernel}|{n}|{:?}|{config:?}", backend_override())
}

/// Looks up a cached result, counting the hit or miss. Tracing bypasses
/// the memo entirely (a replayed result produces no trace events), and
/// bypassed lookups count as neither hit nor miss.
fn memo_get(key: &str) -> Option<KernelResult> {
    if trace_capacity() > 0 {
        return None;
    }
    let hit = result_memo().lock().expect("result memo lock").get(key).cloned();
    match hit {
        Some(_) => RESULT_HITS.fetch_add(1, Ordering::Relaxed),
        None => RESULT_MISSES.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

fn memo_put(key: String, result: &KernelResult) {
    if trace_capacity() > 0 {
        return;
    }
    result_memo().lock().expect("result memo lock").insert(key, result.clone());
}

/// Empties the result memo (the hit/miss counters keep counting).
/// `time_experiments` clears it before every warmup and repetition so a
/// timed run measures real simulation, not a map lookup.
pub fn clear_result_memo() {
    result_memo().lock().expect("result memo lock").clear();
}

/// Process-wide result-memo counters: `(hits, misses)` across every
/// experiment run so far. Surfaced as a `repro stats` note.
#[must_use]
pub fn result_memo_stats() -> (u64, u64) {
    (RESULT_HITS.load(Ordering::Relaxed), RESULT_MISSES.load(Ordering::Relaxed))
}

fn kernel_by_name(name: &str) -> Kernel {
    suite()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("kernel `{name}` in suite"))
}

fn job_for(k: &Kernel, n: usize, config_mut: impl FnOnce(&mut RunConfig)) -> KernelJob {
    let mut config = RunConfig::default();
    config.compiler = k.compiler_options(config.system.geometry);
    config_mut(&mut config);
    (k.case(n, SEED), config)
}

fn run_one(k: &Kernel, n: usize, config_mut: impl FnOnce(&mut RunConfig)) -> KernelResult {
    let (case, config) = job_for(k, n, config_mut);
    let key = memo_key(&k.name, n, &config);
    if let Some(r) = memo_get(&key) {
        return r;
    }
    let r = run_kernel(&case, &config).unwrap_or_else(|e| panic!("{} (n={n}): {e}", k.name));
    memo_put(key, &r);
    r
}

/// Runs every kernel at its scaled default size, fanned across the
/// harness's worker pool; results come back in input order. Jobs already
/// in the result memo are replayed without simulating.
fn run_suite(kernels: Vec<Kernel>, scale: Scale) -> Vec<(Kernel, usize, KernelResult)> {
    let sizes: Vec<usize> = kernels.iter().map(|k| scale.n(k.default_n)).collect();
    let jobs: Vec<KernelJob> =
        kernels.iter().zip(&sizes).map(|(k, &n)| job_for(k, n, |_| {})).collect();
    let keys: Vec<String> = kernels
        .iter()
        .zip(&sizes)
        .zip(&jobs)
        .map(|((k, &n), (_, config))| memo_key(&k.name, n, config))
        .collect();
    let mut results: Vec<Option<KernelResult>> = keys.iter().map(|key| memo_get(key)).collect();
    let missing: Vec<usize> = (0..jobs.len()).filter(|&i| results[i].is_none()).collect();
    if !missing.is_empty() {
        let fresh_jobs: Vec<KernelJob> = missing.iter().map(|&i| jobs[i].clone()).collect();
        let fresh = run_kernels(&fresh_jobs, default_workers());
        for (&i, r) in missing.iter().zip(fresh) {
            let r = r.unwrap_or_else(|e| panic!("{} (n={}): {e}", kernels[i].name, sizes[i]));
            memo_put(keys[i].clone(), &r);
            results[i] = Some(r);
        }
    }
    kernels
        .into_iter()
        .zip(sizes)
        .zip(results)
        .map(|((k, n), r)| (k, n, r.expect("every slot filled")))
        .collect()
}

/// The attribution bucket labels, used as CSV-only column headers on the
/// per-kernel tables and as the `repro stats` breakdown columns.
fn bucket_labels() -> [&'static str; 9] {
    CycleBucket::ALL.map(CycleBucket::label)
}

/// The accelerated run's cycle attribution as raw per-bucket cycle
/// counts, with the identity `sum(buckets) == cycles` asserted (in every
/// build, not just debug) before the numbers enter a report.
fn attribution_extras(r: &KernelResult) -> Vec<String> {
    let acct = r.dyser.cycle_account();
    assert!(
        acct.balanced(),
        "{}: attribution identity violated ({} bucket cycles vs {} total)",
        r.name,
        acct.sum(),
        acct.total_cycles
    );
    CycleBucket::ALL.iter().map(|b| acct.get(*b).to_string()).collect()
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

// ------------------------------------------------------------------ E1

/// E1 (resource table): structural statistics per fabric geometry — the
/// simulator-level stand-in for the paper's FPGA utilisation table.
pub fn e1_fabric_resources() -> ExpTable {
    let mut t = ExpTable::new(
        "E1: fabric structural resources by geometry",
        &["geometry", "FUs", "int", "intmul", "fpadd", "fpmul", "switches", "links", "in", "out", "cfg bits"],
    );
    for dim in [2usize, 4, 6, 8] {
        let geom = FabricGeometry::new(dim, dim);
        let kinds: Vec<FuKind> =
            geom.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        let s = StructuralStats::compute(geom, &kinds);
        t.row(vec![
            geom.to_string(),
            s.fus.to_string(),
            s.int_simple.to_string(),
            s.int_mul.to_string(),
            s.fp_add.to_string(),
            s.fp_mul.to_string(),
            s.switches.to_string(),
            s.links.to_string(),
            s.input_ports.to_string(),
            s.output_ports.to_string(),
            s.frame_bits.to_string(),
        ]);
    }
    t.note("substitutes structural counts for the paper's LUT/BRAM table (DESIGN.md E1)");
    t
}

// ------------------------------------------------------------------ E2

/// E2 (microbenchmark speedup figure): SPARC-DySER vs OpenSPARC cycles on
/// the compute-intense microbenchmarks — the paper's headline 6x claim.
pub fn e2_micro_speedup(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E2: microbenchmark speedup (SPARC-DySER vs OpenSPARC)",
        &["kernel", "n", "base cycles", "dyser cycles", "speedup"],
    );
    t.csv_extra_headers(&bucket_labels());
    let mut speedups = Vec::new();
    let mut peak: f64 = 0.0;
    let micro: Vec<Kernel> =
        suite().into_iter().filter(|k| k.category == Category::Micro).collect();
    for (k, n, r) in run_suite(micro, scale) {
        speedups.push(r.speedup);
        peak = peak.max(r.speedup);
        let extras = attribution_extras(&r);
        t.row_with_extras(
            vec![
                k.name.into(),
                n.to_string(),
                r.baseline.cycles.to_string(),
                r.dyser.cycles.to_string(),
                format!("{:.2}x", r.speedup),
            ],
            extras,
        );
    }
    t.row(vec![
        "geomean".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(&speedups)),
    ]);
    t.note(format!("peak speedup {peak:.2}x (paper headline: ~6x on microbenchmarks)"));
    t
}

// ------------------------------------------------------------------ E3

/// E3 (suite speedup figure): speedups across the full kernel suite,
/// grouped by category — regular vs irregular.
pub fn e3_suite_speedup(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E3: full-suite speedup by category",
        &["kernel", "category", "n", "speedup", "accelerated"],
    );
    let mut by_cat: Vec<(Category, Vec<f64>)> = vec![
        (Category::Micro, Vec::new()),
        (Category::Regular, Vec::new()),
        (Category::Irregular, Vec::new()),
    ];
    t.csv_extra_headers(&bucket_labels());
    for (k, n, r) in run_suite(suite(), scale) {
        by_cat.iter_mut().find(|(c, _)| *c == k.category).expect("category").1.push(r.speedup);
        let extras = attribution_extras(&r);
        t.row_with_extras(
            vec![
                k.name.into(),
                k.category.label().into(),
                n.to_string(),
                format!("{:.2}x", r.speedup),
                if r.accelerated_any { "yes".into() } else { "no".into() },
            ],
            extras,
        );
    }
    for (cat, xs) in by_cat {
        t.note(format!("{} geomean: {:.2}x over {} kernels", cat.label(), geomean(&xs), xs.len()));
    }
    t
}

// --------------------------------------------------------------- stats

/// `repro stats`: per-kernel cycle attribution for both runs of every
/// suite kernel — where each cycle of the evaluation goes.
///
/// The human-facing table shows each bucket as a percentage of the run's
/// cycles; the CSV rendering appends the raw per-bucket cycle counts.
/// Every row is checked against the attribution identity
/// `sum(buckets) == cycles`, and the `mem-miss` bucket is cross-checked
/// against the memory hierarchy's own stall accounting.
///
/// # Panics
///
/// Panics if any kernel fails verification or any attribution check
/// fails — an unbalanced account is a simulator bug, not a result.
pub fn stats_attribution(scale: Scale) -> ExpTable {
    let mut headers: Vec<&str> = vec!["kernel", "run", "cycles"];
    headers.extend(bucket_labels());
    // The process-wide speed totals only grow; snapshot them so the
    // notes report this sweep alone. Without the subtraction a second
    // invocation in the same process (`--reps N`, `repro e2 stats`, a
    // long-lived serve daemon) would fold every earlier run's counters
    // into the hit rates.
    let speed_before = speed_stat_totals();
    // A stats sweep diagnoses the simulation hot path, so it must run
    // real simulation: empty the cross-table result memo (a replayed
    // sweep would show an idle decode cache) and report the memo's
    // sweep-local counters by the same snapshot-delta scheme.
    clear_result_memo();
    let (memo_hits_before, memo_misses_before) = result_memo_stats();
    let mut t = ExpTable::new("Stats: cycle attribution by bucket (% of run cycles)", &headers);
    let raw_headers: Vec<String> =
        bucket_labels().iter().map(|l| format!("{l}-cycles")).collect();
    t.csv_extra_headers(&raw_headers.iter().map(String::as_str).collect::<Vec<_>>());
    for (k, _n, r) in run_suite(suite(), scale) {
        for (run, stats) in [("baseline", &r.baseline), ("dyser", &r.dyser)] {
            let acct = stats.cycle_account();
            assert!(
                acct.balanced(),
                "{} ({run}): attribution identity violated ({} vs {})",
                k.name,
                acct.sum(),
                acct.total_cycles
            );
            assert_eq!(
                acct.get(CycleBucket::MemMiss),
                stats.mem_miss_stall_cycles(),
                "{} ({run}): core and hierarchy disagree on memory stalls",
                k.name
            );
            let mut cells = vec![k.name.to_string(), run.into(), acct.total_cycles.to_string()];
            cells.extend(
                CycleBucket::ALL.iter().map(|b| format!("{:.1}%", 100.0 * acct.fraction(*b))),
            );
            t.row_with_extras(
                cells,
                CycleBucket::ALL.iter().map(|b| acct.get(*b).to_string()).collect(),
            );
        }
    }
    t.note("buckets are exclusive and exhaustive: each row's buckets sum to its cycle count");
    t.note("mem-miss equals the hierarchy's own stall count on every row (cross-checked)");
    let speed = speed_stat_totals().minus(&speed_before);
    t.note(format!(
        "decode cache (interpreted issue path): {} hits / {} misses ({:.1}% hit rate)",
        speed.decode_hits,
        speed.decode_misses,
        percent(speed.decode_hits, speed.decode_hits + speed.decode_misses),
    ));
    t.note(format!(
        "block cache (compiled issue path): {} hits / {} misses / {} invalidations \
         ({:.1}% hit rate)",
        speed.blocks.hits,
        speed.blocks.misses,
        speed.blocks.invalidations,
        percent(speed.blocks.hits, speed.blocks.hits + speed.blocks.misses),
    ));
    let (memo_hits_after, memo_misses_after) = result_memo_stats();
    let memo_hits = memo_hits_after - memo_hits_before;
    let memo_misses = memo_misses_after - memo_misses_before;
    t.note(format!(
        "result memo (cross-table, this sweep): {memo_hits} hits / {memo_misses} misses \
         ({:.1}% hit rate)",
        percent(memo_hits, memo_hits + memo_misses),
    ));
    t
}

/// `part` as a percentage of `whole`; zero when nothing was counted.
fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

// ------------------------------------------------------------------ E4

/// E4 (manual-vs-compiler figure): hand-optimised DySER code against
/// compiler-generated DySER code on the kernels with manual mappings.
pub fn e4_manual_vs_compiler(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E4: manual vs compiler-generated DySER code",
        &["kernel", "n", "base", "compiler", "manual", "compiler x", "manual x", "compiler/manual"],
    );
    let geometry = FabricGeometry::new(8, 8);
    for m in manual::all(geometry, scale.n(512), SEED) {
        let k = kernel_by_name(m.name);
        let n = scale.n(512);
        let r = run_one(&k, n, |_| {});
        let mut rc = RunConfig::default();
        rc.system.geometry = geometry;
        let manual_stats =
            run_program("manual", &m.program, &m.args, &m.init, &m.expected, &rc)
                .unwrap_or_else(|e| panic!("manual {}: {e}", m.name));
        let compiler_x = r.speedup;
        let manual_x = r.baseline.cycles as f64 / manual_stats.cycles.max(1) as f64;
        t.row(vec![
            m.name.into(),
            n.to_string(),
            r.baseline.cycles.to_string(),
            r.dyser.cycles.to_string(),
            manual_stats.cycles.to_string(),
            format!("{compiler_x:.2}x"),
            format!("{manual_x:.2}x"),
            format!("{:.0}%", 100.0 * compiler_x / manual_x),
        ]);
    }
    t.note("manual mappings use pointer-increment addressing, vector ports, and tree reductions");
    t
}

// ------------------------------------------------------------------ E5

/// E5 (dynamic instruction figure): instructions executed by the core,
/// baseline vs accelerated, with the offloaded fraction.
pub fn e5_instruction_reduction(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E5: dynamic core instructions, baseline vs DySER",
        &["kernel", "base instrs", "dyser instrs", "reduction", "base fp+mul", "dyser fp+mul", "fabric ops"],
    );
    use dyser_isa::InstrClass as C;
    for (k, _n, r) in run_suite(suite(), scale) {
        let heavy = |s: &dyser_core::RunStats| {
            s.core.class_count(C::Fp) + s.core.class_count(C::IntMulDiv)
        };
        t.row(vec![
            k.name.into(),
            r.baseline.core.instructions.to_string(),
            r.dyser.core.instructions.to_string(),
            format!("{:+.0}%", -100.0 * r.instr_reduction()),
            heavy(&r.baseline).to_string(),
            heavy(&r.dyser).to_string(),
            r.dyser.fabric.fu_fires().to_string(),
        ]);
    }
    t.note("negative = fewer core instructions; heavy arithmetic moves to the fabric");
    t
}

// ------------------------------------------------------------------ E6

/// E6 (power/energy table): the energy model's view of both runs —
/// fabric power near the prototype's 200 mW, energy and EDP ratios.
pub fn e6_energy(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E6: energy and power (activity model, 50 MHz)",
        &["kernel", "base uJ", "dyser uJ", "energy ratio", "fabric mW", "EDP gain"],
    );
    let model = EnergyModel::default();
    let mut fabric_powers = Vec::new();
    for (k, _n, r) in run_suite(suite(), scale) {
        let eb = r.baseline.energy(&model);
        let ed = r.dyser.energy(&model);
        if r.accelerated_any {
            fabric_powers.push(ed.fabric_power_mw);
        }
        t.row(vec![
            k.name.into(),
            format!("{:.1}", eb.total_nj / 1000.0),
            format!("{:.1}", ed.total_nj / 1000.0),
            format!("{:.2}x", eb.total_nj / ed.total_nj),
            format!("{:.0}", ed.fabric_power_mw),
            format!("{:.2}x", eb.edp / ed.edp),
        ]);
    }
    let avg = fabric_powers.iter().sum::<f64>() / fabric_powers.len().max(1) as f64;
    t.note(format!(
        "mean fabric power across accelerated kernels: {avg:.0} mW (prototype: ~200 mW)"
    ));
    t
}

// ------------------------------------------------------------------ E7

/// E7 (configuration-overhead figure): speedup versus invocation count —
/// the configuration load amortises as the loop runs longer.
pub fn e7_config_overhead(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E7: configuration-overhead amortisation (saxpy)",
        &["n", "config cycles", "base cycles", "dyser cycles", "speedup"],
    );
    let k = kernel_by_name("saxpy");
    let base_sizes = [8usize, 16, 32, 64, 128, 256, 512, 1024];
    for &n0 in &base_sizes {
        let n = scale.n(n0).max(8);
        let r = run_one(&k, n, |_| {});
        let config_cycles = r.dyser.core.stall_count(StallCause::DyserConfig);
        t.row(vec![
            n.to_string(),
            config_cycles.to_string(),
            r.baseline.cycles.to_string(),
            r.dyser.cycles.to_string(),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.note("speedup rises with trip count as the fixed configuration cost amortises");
    t
}

// ------------------------------------------------------------------ E8

/// E8 (control-flow-shape study): the two shapes that curtail the
/// compiler, plus the adaptive exit-condition offload.
pub fn e8_control_flow_shapes(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E8: control-flow shapes and the adaptive mechanism",
        &["kernel", "shape", "acceleratable", "speedup", "note"],
    );
    let shape_of = |k: &Kernel| -> LoopShape {
        let shapes = dyser_compiler::classify_loops(&k.function());
        shapes
            .iter()
            .map(|r| r.shape)
            .max_by_key(|s| match s {
                LoopShape::Regular => 0,
                LoopShape::IfConvertible => 1,
                LoopShape::EarlyExit => 2,
                LoopShape::NestedControl => 3,
            })
            .expect("kernels have loops")
    };
    for name in ["relu_clamp", "find_first", "cond_store"] {
        let k = kernel_by_name(name);
        let n = scale.n(k.default_n);
        let r = run_one(&k, n, |_| {});
        let shape = shape_of(&k);
        let note = match shape {
            LoopShape::IfConvertible => "predicated into selects and accelerated",
            LoopShape::EarlyExit => "shape A: side exit blocks pipelined invocations",
            LoopShape::NestedControl => "shape B: conditional store defeats predication",
            LoopShape::Regular => "",
        };
        t.row(vec![
            name.into(),
            shape.label().into(),
            if shape.acceleratable() { "yes".into() } else { "no".into() },
            format!("{:.2}x", r.speedup),
            note.into(),
        ]);
    }
    // Adaptive mechanism 1: speculative window checking for shape-A
    // early-exit loops (hand implementation of the paper's sketch).
    {
        let k = kernel_by_name("find_first");
        let n = scale.n(k.default_n);
        let base = run_one(&k, n, |_| {});
        if let Some(m) =
            dyser_workloads::shapes::speculative_window(FabricGeometry::new(8, 8), n, SEED)
        {
            let rc = RunConfig::default();
            let spec = run_program("speculative", &m.program, &m.args, &m.init, &m.expected, &rc)
                .expect("speculative search verifies");
            let x = base.baseline.cycles as f64 / spec.cycles.max(1) as f64;
            t.row(vec![
                "find_first (speculative)".into(),
                "early-exit (shape A)".into(),
                "adaptive".into(),
                format!("{x:.2}x"),
                "windows checked in-fabric one iteration ahead; rescan on hit".into(),
            ]);
        }
    }

    // Adaptive mechanism 2: exit-condition offload, on and off.
    let k = kernel_by_name("scan_poly");
    let n = scale.n(k.default_n);
    let off = run_one(&k, n, |c| {
        c.compiler.region.offload_exit_condition = false;
    });
    let on = run_one(&k, n, |_| {});
    t.row(vec![
        "scan_poly (no offload)".into(),
        "data-dependent exit".into(),
        "no".into(),
        format!("{:.2}x", off.speedup),
        "exit test keeps the whole chain on the core".into(),
    ]);
    t.row(vec![
        "scan_poly (offload)".into(),
        "data-dependent exit".into(),
        "adaptive".into(),
        format!("{:.2}x", on.speedup),
        "condition computed in-fabric, received every iteration".into(),
    ]);
    t.note("speculative window checking recovers shape-A loops (adaptive mechanism 1)");
    t.note("the exit-condition offload trades recv latency for offloaded arithmetic; on");
    t.note("this non-compute-intense scan it does not pay — the paper's finding ii");
    t
}

// ------------------------------------------------------------------ E9

/// E9 (fabric-size sensitivity figure): speedup versus fabric geometry.
pub fn e9_fabric_sweep(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E9: speedup vs fabric geometry",
        &["kernel", "2x2", "4x4", "6x6", "8x8"],
    );
    for name in ["poly6", "fir4", "stencil3", "saxpy"] {
        let k = kernel_by_name(name);
        let n = scale.n(k.default_n / 2);
        let mut cells = vec![name.to_owned()];
        for dim in [2usize, 4, 6, 8] {
            let r = run_one(&k, n, |c| c.set_geometry(FabricGeometry::new(dim, dim)));
            cells.push(format!("{:.2}x", r.speedup));
        }
        t.row(cells);
    }
    t.note("larger fabrics admit deeper unrolling; small fabrics fall back to lower factors");
    t
}

// ------------------------------------------------------------------ E10

/// E10 (integration-overhead table): a DySER-equipped system running the
/// unaccelerated binary must cost exactly the same cycles as a system
/// with no fabric at all — integration introduces no overhead.
pub fn e10_integration_overhead(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "E10: integration overhead (baseline binary, fabric present vs absent)",
        &["kernel", "no-fabric cycles", "fabric-idle cycles", "delta"],
    );
    for k in suite().into_iter().take(6) {
        let n = scale.n(k.default_n / 2);
        let case = k.case(n, SEED);
        let compiled = dyser_core::compile_cached(
            &case.function,
            &k.compiler_options(FabricGeometry::new(8, 8)),
        )
        .expect("compiles");

        let mut rc_none = RunConfig::default();
        rc_none.system.has_fabric = false;
        let none = run_program("no-fabric", &compiled.baseline, &case.args, &case.init, &case.expected, &rc_none)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));

        let rc_idle = RunConfig::default();
        let idle = run_program("fabric-idle", &compiled.baseline, &case.args, &case.init, &case.expected, &rc_idle)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));

        t.row(vec![
            k.name.into(),
            none.cycles.to_string(),
            idle.cycles.to_string(),
            (idle.cycles as i64 - none.cycles as i64).to_string(),
        ]);
    }
    t.note("delta 0 everywhere: the DySER integration adds no cycles when unused (finding i)");
    t
}

// ------------------------------------------------------- whole programs

/// Default stdin size (in 8-byte words) for the whole-program workloads
/// at scale 1.0 (shared with the serve daemon's `program` jobs).
pub const PROGRAM_N: usize = 256;

/// P1–P3 (whole-program workloads): one emulated process — argv/envp
/// startup stack, stdin via `read`, heap via `brk`, results via `write`,
/// termination via `exit` — run as a baseline and a DySER-accelerated
/// leg. Both legs must produce byte-identical stdout and the same exit
/// code (the harness verifies this on every run).
pub fn program_experiment(name: &str, scale: Scale) -> ExpTable {
    let build = dyser_workloads::programs::by_name(name)
        .unwrap_or_else(|| panic!("unknown program `{name}`"));
    let n = scale.n(PROGRAM_N);
    let geometry = FabricGeometry::new(8, 8);
    let case = build(geometry, n, SEED).expect("the 8x8 fabric fits every program");
    let mut config = RunConfig::default();
    config.system.geometry = geometry;
    let key = memo_key(&case.name, n, &config);
    let r = match memo_get(&key) {
        Some(r) => r,
        None => {
            let r = dyser_core::run_program_case(&case, &config)
                .unwrap_or_else(|e| panic!("{name} (n={n}): {e}"));
            memo_put(key, &r);
            r
        }
    };
    let mut t = ExpTable::new(
         match name {
            "p1" => "P1: whole-program string matcher (argv key, stdin text)",
            "p2" => "P2: whole-program JSON tokenizer pipeline (brk heap, hash)",
            _ => "P3: whole-program image-kernel pipeline (stencil + checksum)",
        },
        &["program", "n", "base cycles", "dyser cycles", "speedup", "stdout B", "exit"],
    );
    t.csv_extra_headers(&bucket_labels());
    let extras = attribution_extras(&r);
    t.row_with_extras(
        vec![
            name.into(),
            n.to_string(),
            r.baseline.cycles.to_string(),
            r.dyser.cycles.to_string(),
            format!("{:.2}x", r.speedup),
            case.expected_stdout.len().to_string(),
            case.expected_exit.to_string(),
        ],
        extras,
    );
    t.note(format!(
        "syscall stall cycles: baseline {}, dyser {} (trap service at the core interface)",
        r.baseline.core.stall_count(StallCause::Syscall),
        r.dyser.core.stall_count(StallCause::Syscall),
    ));
    t.note("both legs produced byte-identical stdout and the same exit code (verified)");
    t
}

// ------------------------------------------------------------- ablation

/// Ablation of the compiler's design choices (DESIGN.md): unroll factor,
/// store-lag depth, and if-conversion, on one compute-heavy and one
/// memory-heavy kernel.
pub fn ablation(scale: Scale) -> ExpTable {
    let mut t = ExpTable::new(
        "Ablation: compiler design choices",
        &["kernel", "variant", "dyser cycles", "speedup"],
    );
    for name in ["poly6", "saxpy"] {
        let k = kernel_by_name(name);
        let n = scale.n(k.default_n / 2);
        type Variant = (&'static str, Box<dyn Fn(&mut RunConfig)>);
        let variants: Vec<Variant> = vec![
            ("default (unroll 4, lag 2)", Box::new(|_: &mut RunConfig| {})),
            ("no unroll", Box::new(|c: &mut RunConfig| c.compiler.unroll_factor = 1)),
            ("unroll 8", Box::new(|c: &mut RunConfig| c.compiler.unroll_factor = 8)),
            ("lag depth 1", Box::new(|c: &mut RunConfig| c.compiler.codegen.lag_depth = 1)),
            ("lag depth 4", Box::new(|c: &mut RunConfig| c.compiler.codegen.lag_depth = 4)),
            ("no store lag", Box::new(|c: &mut RunConfig| c.compiler.codegen.lag_stores = false)),
            (
                "no scheduler refinement",
                Box::new(|c: &mut RunConfig| c.compiler.schedule.refinement_rounds = 0),
            ),
            (
                "perfect memory",
                Box::new(|c: &mut RunConfig| c.system.mem = dyser_mem::MemConfig::perfect()),
            ),
            ("fifo depth 2", Box::new(|c: &mut RunConfig| c.system.fifo_depth = 2)),
            ("fifo depth 8", Box::new(|c: &mut RunConfig| c.system.fifo_depth = 8)),
            ("universal FUs", Box::new(|c: &mut RunConfig| c.set_universal_fus())),
        ];
        for (label, tweak) in variants {
            let r = run_one(&k, n, |c| tweak(c));
            t.row(vec![
                name.into(),
                label.into(),
                r.dyser.cycles.to_string(),
                format!("{:.2}x", r.speedup),
            ]);
        }
    }
    t.note("the `lag depth N` rows set the CAP; the per-region auto-tuner picks the depth");
    t.note("unrolling and store lagging carry the compute-heavy kernel; perfect memory shows the residual memory sensitivity");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Scale = Scale(0.08);

    #[test]
    fn e1_has_four_geometries() {
        let t = e1_fabric_resources();
        assert_eq!(t.rows.len(), 4);
        assert!(t.to_string().contains("8x8"));
    }

    #[test]
    fn e2_reports_micro_kernels_and_geomean() {
        let t = e2_micro_speedup(TINY);
        assert_eq!(t.rows.len(), 3 + 1);
        assert!(t.rows.last().unwrap()[0] == "geomean");
    }

    #[test]
    fn e4_covers_all_manual_kernels() {
        let t = e4_manual_vs_compiler(TINY);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn e7_speedup_grows_with_n() {
        let t = e7_config_overhead(Scale(0.5));
        let col = &t.headers[4];
        let first: f64 = t.parse_cell(0, col).expect("first row speedup");
        let last: f64 = t.parse_cell(t.rows.len() - 1, col).expect("last row speedup");
        assert!(last > first, "amortisation: {first} -> {last}");
    }

    #[test]
    fn e10_deltas_are_zero() {
        let t = e10_integration_overhead(TINY);
        for row in &t.rows {
            assert_eq!(row[3], "0", "{row:?}");
        }
    }

    #[test]
    fn ablation_defaults_not_slower_than_no_lag() {
        let t = ablation(Scale(0.25));
        // poly6's default variant must beat its no-store-lag variant.
        let cycles = |variant: &str| -> u64 {
            let row = t
                .rows
                .iter()
                .position(|r| r[0] == "poly6" && r[1] == variant)
                .unwrap_or_else(|| panic!("no poly6 / {variant} row"));
            t.parse_cell(row, "dyser cycles").expect("cycle cell")
        };
        assert!(cycles("default (unroll 4, lag 2)") <= cycles("no store lag"));
    }

    #[test]
    fn result_memo_replays_bit_identically() {
        let k = kernel_by_name("saxpy");
        let n = TINY.n(k.default_n);
        // A config no other test uses, so the key is this test's alone.
        let tweak = |c: &mut RunConfig| c.system.fifo_depth = 7;
        let first = run_one(&k, n, tweak);
        // Another test may clear the memo concurrently (time_experiments
        // clears per repetition); retry until a lookup lands as a hit.
        let mut hit_seen = false;
        for _ in 0..5 {
            let (h0, _) = result_memo_stats();
            let again = run_one(&k, n, tweak);
            assert_eq!(again.baseline.cycles, first.baseline.cycles);
            assert_eq!(again.dyser.cycles, first.dyser.cycles);
            assert_eq!(again.speedup, first.speedup);
            let (h1, _) = result_memo_stats();
            if h1 > h0 {
                hit_seen = true;
                break;
            }
        }
        assert!(hit_seen, "repeated identical runs never hit the result memo");
    }

    #[test]
    fn memoized_tables_render_identically() {
        // e3/e5/e6 re-sweep the suite e2 already ran in `repro all`; the
        // memoized replay must not change a single cell. Rendering the
        // same table twice (cold, then warm) checks exactly that path.
        let cold = e2_micro_speedup(TINY);
        let warm = e2_micro_speedup(TINY);
        assert_eq!(cold.to_csv(), warm.to_csv());
    }

    #[test]
    fn all_experiments_run_at_tiny_scale() {
        for id in EXPERIMENT_IDS {
            let t = run_experiment_scaled(id, TINY);
            assert!(!t.rows.is_empty(), "{id}");
        }
    }
}
