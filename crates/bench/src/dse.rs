//! Design-space exploration (`repro dse`): sweep fabric geometry, FU
//! mix, FIFO depth, cache parameters, and unroll factor across thousands
//! of configurations, prune with a coarse-grain analytic estimator, and
//! simulate only the survivors.
//!
//! The paper's E1–E10 experiments are point measurements on one fabric
//! geometry; the question they circle — when do DySER's configuration
//! overhead, FIFO depth, and grid size pay off — is a surface over the
//! configuration space. This module generalizes the experiments into
//! that surface:
//!
//! 1. **Enumerate** every point of a [`DsePlan`] (geometry × FU mix ×
//!    FIFO depth × memory preset × unroll factor, per kernel).
//! 2. **Estimate** each point with a closed-form counter model over the
//!    compiled region reports (op counts, port pressure, config-load
//!    cost) — compilation goes through the process-wide compile cache,
//!    so the sweep pays one compile per distinct (kernel, geometry,
//!    kinds, unroll) combination, not one per point.
//! 3. **Prune** points whose estimate is dominated by another point of
//!    the same kernel with a [`PRUNE_MARGIN`] safety factor on every
//!    axis, so a point is only discarded when it is *provably* worse
//!    than a survivor under the documented estimator error band.
//! 4. **Simulate** the survivors through the parallel harness (Compiled
//!    backend by default) and report cycles, energy
//!    ([`EnergyModel::estimate_for_geometry`]), config-load overhead,
//!    and the estimated-vs-simulated accuracy of every survivor.
//! 5. **Emit** the three-axis Pareto front (cycles / energy /
//!    config-load cycles) as `BENCH_dse.json` plus a CSV table.
//!
//! The estimator's absolute error is bounded by the accuracy suite
//! (`tests/dse_estimator.rs`) to the band
//! [`EST_BAND_LOW`]..[`EST_BAND_HIGH`]; pruning only compares estimates
//! *between* points of the same kernel, where the systematic component
//! of the error cancels.

use std::fmt;

use dyser_core::{
    compile_cached, default_workers, parallel_map, run_kernel, run_kernel_batch, Backend,
    KernelJob, KernelResult, RunConfig,
};
use dyser_energy::{Activity, EnergyModel};
use dyser_fabric::{FabricConfigError, FabricGeometry, DEFAULT_CONFIG_BUS_BITS};
use std::collections::HashMap;
use dyser_mem::MemConfig;
use dyser_sparc::StallCause;
use dyser_workloads::{program_inner_kernels, suite, Kernel};

use crate::experiments::SEED;
use crate::table::{ExpTable, TableError};

/// Lower edge of the documented estimator error band: the analytic
/// estimate of a point's cycles is asserted to be at least
/// `EST_BAND_LOW` × the simulated cycles.
pub const EST_BAND_LOW: f64 = 0.2;

/// Upper edge of the documented estimator error band (see
/// [`EST_BAND_LOW`]).
pub const EST_BAND_HIGH: f64 = 5.0;

/// Safety factor applied on every axis before pruning: point `p` is
/// discarded only when some point `q` of the same kernel satisfies
/// `est(q) * PRUNE_MARGIN <= est(p)` on cycles *and* energy, and
/// `est_config(q) <= est_config(p)`. The margin covers the estimator's
/// point-to-point ranking error; the Pareto-safety test
/// (`tests/dse_estimator.rs`) checks it empirically on an exhaustive
/// grid.
pub const PRUNE_MARGIN: f64 = 3.0;

/// Startup cycles every run pays before the steady state: prologue,
/// constant-pool setup, and cold instruction misses.
const STARTUP_CYCLES: f64 = 150.0;

// ------------------------------------------------------------ axes

/// The memory-hierarchy presets a sweep can select (the `MemConfig`
/// constructors the ablation study already exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPreset {
    /// The default hierarchy (32 B L1 lines, 64 B L2, 8-cycle DRAM).
    Default,
    /// `MemConfig::tiny()`: small caches that miss often.
    Tiny,
    /// `MemConfig::perfect()`: every access hits.
    Perfect,
}

impl MemPreset {
    /// All presets, in sweep order.
    pub const ALL: [MemPreset; 3] = [MemPreset::Default, MemPreset::Tiny, MemPreset::Perfect];

    /// Parses a CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "default" => Ok(MemPreset::Default),
            "tiny" => Ok(MemPreset::Tiny),
            "perfect" => Ok(MemPreset::Perfect),
            other => Err(format!("unknown memory preset {other:?} (default|tiny|perfect)")),
        }
    }

    /// The canonical CLI spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MemPreset::Default => "default",
            MemPreset::Tiny => "tiny",
            MemPreset::Perfect => "perfect",
        }
    }

    /// The hierarchy this preset selects.
    #[must_use]
    pub fn config(self) -> MemConfig {
        match self {
            MemPreset::Default => MemConfig::default(),
            MemPreset::Tiny => MemConfig::tiny(),
            MemPreset::Perfect => MemConfig::perfect(),
        }
    }

    /// Average extra latency per sequential 8-byte access beyond the L1
    /// hit: every `line/8` accesses miss into the next level. This is
    /// the estimator's whole memory model.
    fn extra_latency_per_word(self) -> f64 {
        let m = self.config();
        let l1_line = m.l1d.line_bytes.max(8) as f64;
        let l2_line = m.l2.line_bytes.max(8) as f64;
        (8.0 / l1_line) * m.l2.hit_latency as f64 + (8.0 / l2_line) * m.dram_latency as f64
    }
}

/// The FU-mix axis: the default heterogeneous checkerboard or the
/// idealised all-universal grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuMix {
    /// `FuKind::default_pattern` per site.
    Default,
    /// Every site a `FuKind::Universal` unit.
    Universal,
}

impl FuMix {
    /// All mixes, in sweep order.
    pub const ALL: [FuMix; 2] = [FuMix::Default, FuMix::Universal];

    /// Parses a CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "default" => Ok(FuMix::Default),
            "universal" => Ok(FuMix::Universal),
            other => Err(format!("unknown FU mix {other:?} (default|universal)")),
        }
    }

    /// The canonical CLI spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FuMix::Default => "default",
            FuMix::Universal => "universal",
        }
    }
}

// ------------------------------------------------------------ points

/// One point of the design space: every swept knob, for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Suite kernel name.
    pub kernel: String,
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// FU mix.
    pub mix: FuMix,
    /// Port FIFO depth.
    pub fifo_depth: usize,
    /// Memory preset.
    pub mem: MemPreset,
    /// Requested unroll factor.
    pub unroll: usize,
}

impl fmt::Display for DsePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}x{}/{} fifo{} mem:{} u{}",
            self.kernel,
            self.rows,
            self.cols,
            self.mix.label(),
            self.fifo_depth,
            self.mem.label(),
            self.unroll
        )
    }
}

impl DsePoint {
    /// Builds the point's harness configuration (system and compiler in
    /// sync via the `RunConfig` plumbing helpers).
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError`] for degenerate geometry or FIFO
    /// depth — the same validation the CLI applies at parse time, so a
    /// point built from checked axes cannot fail deep in scheduling.
    pub fn run_config(&self, kernel: &Kernel, backend: Option<Backend>) -> Result<RunConfig, FabricConfigError> {
        let geometry = FabricGeometry::try_new(self.rows, self.cols)?;
        if self.fifo_depth == 0 {
            return Err(FabricConfigError::ZeroFifoDepth);
        }
        let mut rc = RunConfig::default();
        rc.compiler = kernel.compiler_options(geometry);
        rc.set_geometry(geometry);
        if self.mix == FuMix::Universal {
            rc.set_universal_fus();
        }
        rc.system.fifo_depth = self.fifo_depth;
        rc.system.mem = self.mem.config();
        rc.compiler.unroll_factor = self.unroll;
        if let Some(b) = backend {
            rc.backend = b;
        }
        rc.system.validate()?;
        Ok(rc)
    }
}

// ------------------------------------------------------------ plan

/// The swept axes. [`DsePlan::default`] is the full committed sweep;
/// the CLI narrows it with `--kernels`, `--dims`, … flags.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePlan {
    /// Suite kernels to sweep.
    pub kernels: Vec<String>,
    /// Grid dimensions; geometries are the full `dims x dims` cross
    /// product (non-square included).
    pub dims: Vec<usize>,
    /// FU mixes.
    pub mixes: Vec<FuMix>,
    /// FIFO depths.
    pub fifos: Vec<usize>,
    /// Memory presets.
    pub mems: Vec<MemPreset>,
    /// Unroll factors.
    pub unrolls: Vec<usize>,
    /// Problem size per kernel.
    pub n: usize,
    /// Whether analytic pre-pruning is enabled (`--no-prune` disables).
    pub prune: bool,
    /// Backend for survivor simulation; `None` = harness default.
    pub backend: Option<Backend>,
}

/// Every kernel a sweep may name: the full suite plus the inner
/// regions of the whole-program workloads (`p1_match`, `p2_hash`,
/// `p3_stencil`). The default plan still sweeps only suite kernels, so
/// reference sweep reports are unchanged; the program regions opt in
/// via `--kernels`.
#[must_use]
pub fn dse_kernels() -> Vec<Kernel> {
    let mut kernels = suite();
    kernels.extend(program_inner_kernels());
    kernels
}

impl Default for DsePlan {
    fn default() -> Self {
        DsePlan {
            kernels: vec!["poly6".into(), "saxpy".into()],
            dims: vec![2, 4, 6, 8],
            mixes: FuMix::ALL.to_vec(),
            fifos: vec![1, 2, 4, 8],
            mems: MemPreset::ALL.to_vec(),
            unrolls: vec![1, 2, 4, 8],
            n: 256,
            prune: true,
            backend: Some(Backend::Compiled),
        }
    }
}

/// A typed failure validating or running a sweep. Every variant renders
/// a one-line message; the CLI exits nonzero with it instead of
/// panicking somewhere inside scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// A kernel name not in the workload suite.
    UnknownKernel(String),
    /// A degenerate geometry or FIFO depth, caught at validation time.
    Config(FabricConfigError),
    /// An axis with no values (the sweep would be empty).
    EmptyAxis(&'static str),
    /// A survivor failed compilation or simulation.
    Run(String),
    /// A report row could not be assembled.
    Table(TableError),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::UnknownKernel(k) => write!(f, "unknown kernel {k:?} (see `dyser-workloads`)"),
            DseError::Config(e) => write!(f, "invalid sweep point: {e}"),
            DseError::EmptyAxis(axis) => write!(f, "sweep axis `{axis}` has no values"),
            DseError::Run(e) => write!(f, "survivor simulation failed: {e}"),
            DseError::Table(e) => write!(f, "report assembly failed: {e}"),
        }
    }
}

impl std::error::Error for DseError {}

impl From<FabricConfigError> for DseError {
    fn from(e: FabricConfigError) -> Self {
        DseError::Config(e)
    }
}

impl From<TableError> for DseError {
    fn from(e: TableError) -> Self {
        DseError::Table(e)
    }
}

impl DsePlan {
    /// Validates every axis value up front: kernel names against the
    /// suite, geometry dimensions through [`FabricGeometry::try_new`],
    /// FIFO depths against the zero-depth error. This is the CLI's
    /// parse-time gate — after it passes, no point of the sweep can hit
    /// a construction panic.
    ///
    /// # Errors
    ///
    /// Returns the first offending axis value as a typed [`DseError`].
    pub fn validate(&self) -> Result<(), DseError> {
        for (axis, empty) in [
            ("kernels", self.kernels.is_empty()),
            ("dims", self.dims.is_empty()),
            ("mixes", self.mixes.is_empty()),
            ("fifos", self.fifos.is_empty()),
            ("mems", self.mems.is_empty()),
            ("unrolls", self.unrolls.is_empty()),
        ] {
            if empty {
                return Err(DseError::EmptyAxis(axis));
            }
        }
        let known = dse_kernels();
        for name in &self.kernels {
            if !known.iter().any(|k| k.name == *name) {
                return Err(DseError::UnknownKernel(name.clone()));
            }
        }
        for &d in &self.dims {
            FabricGeometry::try_new(d, d)?;
        }
        for &f in &self.fifos {
            if f == 0 {
                return Err(DseError::Config(FabricConfigError::ZeroFifoDepth));
            }
        }
        if self.unrolls.iter().any(|&u| u == 0) {
            return Err(DseError::Run("unroll factor 0 is not a compiler mode".into()));
        }
        Ok(())
    }

    /// Enumerates every point, in deterministic nested-axis order.
    #[must_use]
    pub fn points(&self) -> Vec<DsePoint> {
        let mut out = Vec::new();
        for kernel in &self.kernels {
            for &rows in &self.dims {
                for &cols in &self.dims {
                    for &mix in &self.mixes {
                        for &fifo_depth in &self.fifos {
                            for &mem in &self.mems {
                                for &unroll in &self.unrolls {
                                    out.push(DsePoint {
                                        kernel: kernel.clone(),
                                        rows,
                                        cols,
                                        mix,
                                        fifo_depth,
                                        mem,
                                        unroll,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

// ------------------------------------------------------------ estimator

/// The coarse-grain analytic score of one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated accelerated-run cycles.
    pub cycles: f64,
    /// Estimated accelerated-run energy (nJ).
    pub energy_nj: f64,
    /// Estimated config-load cycles (exact frame bits over the config
    /// bus — the one term the estimator knows precisely).
    pub config_cycles: u64,
    /// Whether any region mapped onto the fabric at this point.
    pub accelerated: bool,
    /// The scalar-core fallback model's cycles, computed for every point
    /// (it equals `cycles` on unaccelerated points). Calibration anchors
    /// it separately against the anchor's *baseline* run, because the
    /// scalar model's systematic error (FP latencies the counter model
    /// ignores) differs from the accelerated model's.
    pub scalar_cycles: f64,
}

/// Scores one point analytically: compile (through the shared cache),
/// then a closed-form pass over the region reports. No simulation runs.
///
/// The model, per accelerated invocation of the region(s):
///
/// * **core feed** — two core instructions per fabric input/output (the
///   load+send and recv+store pairs) plus loop overhead;
/// * **port pressure** — an invocation cannot retire faster than its
///   values cross the edge ports, `inputs / input_ports` cycles;
/// * **memory** — each input/output word pays the preset's average
///   beyond-L1 latency ([`MemPreset::extra_latency_per_word`]).
///
/// The invocation count is `n / u` where the *effective* unroll `u` is
/// recovered by comparing the point's region op count against a
/// reference compile at unroll 1 — the compiler silently falls back to
/// lower factors on small fabrics, and trusting the requested factor
/// would undercount invocations there. Unmapped points fall back to a
/// scalar-core model over the same reference op counts.
///
/// # Errors
///
/// Returns [`DseError::Run`] if compilation fails.
pub fn estimate_point(kernel: &Kernel, point: &DsePoint, n: usize) -> Result<Estimate, DseError> {
    let rc = point.run_config(kernel, None)?;
    let compiled = compile_cached(&kernel.function(), &rc.compiler)
        .map_err(|e| DseError::Run(format!("{point}: {e}")))?;

    // Reference compile at unroll 1 on the same fabric: per-iteration op
    // counts. Cached process-wide, so the sweep pays for it once per
    // (kernel, geometry, kinds).
    let mut ref_rc = rc.clone();
    ref_rc.compiler.unroll_factor = 1;
    let reference = compile_cached(&kernel.function(), &ref_rc.compiler)
        .map_err(|e| DseError::Run(format!("{point} (reference): {e}")))?;

    let sum_accel = |c: &dyser_compiler::CompiledProgram| {
        let mut ops = 0usize;
        let mut ins = 0usize;
        let mut outs = 0usize;
        for r in &c.regions {
            if matches!(r.fate, dyser_compiler::RegionFate::Accelerated) {
                ops += r.compute_ops;
                ins += r.inputs;
                outs += r.outputs;
            }
        }
        (ops, ins, outs)
    };
    let (ops, ins, outs) = sum_accel(&compiled);
    let (ref_ops, _, _) = sum_accel(&reference);
    // The scalar model counts every region's ops whether or not it
    // mapped — an unmapped region still executes its ops on the core.
    let mut scalar_ops = 0usize;
    let mut scalar_ins = 0usize;
    let mut scalar_outs = 0usize;
    for r in &reference.regions {
        scalar_ops += r.compute_ops;
        scalar_ins += r.inputs;
        scalar_outs += r.outputs;
    }
    // Per-iteration op count; region reports may be empty when no
    // candidate region exists at all.
    let ops_per_iter = ref_ops.max(1);
    let scalar_ops = scalar_ops.max(1);

    let config_bits: u64 = compiled.accelerated.configs.iter().map(|c| c.frame_bits()).sum();
    let config_cycles: u64 = compiled
        .accelerated
        .configs
        .iter()
        .map(|c| c.frame_bits().div_ceil(DEFAULT_CONFIG_BUS_BITS))
        .sum();

    let geometry = FabricGeometry::new(point.rows, point.cols);
    let mem_extra = point.mem.extra_latency_per_word();
    let model = EnergyModel::default();

    // The scalar-core model, always computed: CPI ~1.5 over the
    // per-iteration op count plus loop and memory overhead.
    let scalar_io = (scalar_ins + scalar_outs).max(2) as f64;
    let scalar_cycles = STARTUP_CYCLES
        + n as f64 * (scalar_ops as f64 * 1.5 + scalar_io + 4.0 + mem_extra * scalar_io);

    let (cycles, activity) = if compiled.accelerated_any && ops > 0 {
        // Effective unroll from the op-count ratio (>=1).
        let u = (ops as f64 / ops_per_iter as f64).max(1.0);
        let invocations = (n as f64 / u).ceil().max(1.0);
        let io = (ins + outs) as f64;
        let core_feed = 2.0 * io + 4.0;
        let port_pressure = (ins as f64 / geometry.input_ports() as f64)
            .max(outs as f64 / geometry.output_ports() as f64);
        // Shallow FIFOs serialize the producer/consumer handoff; depth 1
        // costs roughly an extra half-cycle per transferred value.
        let fifo_penalty = if point.fifo_depth == 1 { 0.5 * io } else { 0.0 };
        let per_inv = core_feed.max(port_pressure) + mem_extra * io + fifo_penalty;
        let cycles = STARTUP_CYCLES + config_cycles as f64 + invocations * per_inv;

        let inv = invocations as u64;
        let act = Activity {
            cycles: cycles as u64,
            core_int_ops: inv * 4,
            core_loads: inv * ins as u64,
            core_stores: inv * outs as u64,
            core_branches: inv,
            core_dyser_ops: inv * (ins + outs) as u64,
            l1_accesses: inv * (2 * (ins + outs) + 5) as u64,
            l2_accesses: (invocations * io * 8.0 / 32.0) as u64,
            dram_accesses: (invocations * io * 8.0 / 64.0) as u64,
            fabric_int_ops: inv * ops as u64,
            fabric_switch_hops: inv * (3 * ops + ins + outs) as u64,
            fabric_port_transfers: inv * (ins + outs) as u64,
            fabric_config_bits: config_bits,
            ..Default::default()
        };
        (cycles, act)
    } else {
        // Scalar fallback: nothing mapped, so the accelerated binary is
        // the scalar loop.
        let io = scalar_io;
        let cycles = scalar_cycles;
        let n64 = n as u64;
        let act = Activity {
            cycles: cycles as u64,
            core_int_ops: n64 * (scalar_ops as u64 + 2),
            core_loads: n64 * scalar_ins.max(1) as u64,
            core_stores: n64 * scalar_outs.max(1) as u64,
            core_branches: n64,
            l1_accesses: n64 * (scalar_ops as u64 + 6),
            l2_accesses: (n as f64 * io * 8.0 / 32.0) as u64,
            dram_accesses: (n as f64 * io * 8.0 / 64.0) as u64,
            ..Default::default()
        };
        (cycles, act)
    };

    let energy_nj = model.estimate_for_geometry(&activity, geometry.fu_count()).total_nj
        + model.config_load_energy_nj(config_bits);
    Ok(Estimate {
        cycles,
        energy_nj,
        config_cycles,
        accelerated: compiled.accelerated_any && ops > 0,
        scalar_cycles,
    })
}

/// The per-kernel calibration point: the default system geometry and
/// FIFO depth, the default FU mix and memory hierarchy, no unrolling.
/// [`run_dse_with`] simulates this one point per kernel before
/// estimating anything and scales the analytic model by the observed
/// estimated/simulated ratio — anchoring cancels the model's systematic
/// error (unmodelled FP latencies, pipeline depth) while leaving the
/// *relative* ranking between points, and therefore the pruning
/// decisions, untouched.
#[must_use]
pub fn anchor_point(kernel: &str) -> DsePoint {
    let default = RunConfig::default();
    DsePoint {
        kernel: kernel.to_owned(),
        rows: default.system.geometry.rows(),
        cols: default.system.geometry.cols(),
        mix: FuMix::Default,
        fifo_depth: default.system.fifo_depth,
        mem: MemPreset::Default,
        unroll: 1,
    }
}

/// Whether estimate `q` prunes estimate `p` (same kernel): `q` must be
/// at least [`PRUNE_MARGIN`] times better on cycles *and* energy and no
/// worse on config load — only then is `p` worse beyond the estimator's
/// ranking error on every axis at once.
fn prunes(q: &Estimate, p: &Estimate) -> bool {
    q.cycles * PRUNE_MARGIN <= p.cycles
        && q.energy_nj * PRUNE_MARGIN <= p.energy_nj
        && q.config_cycles <= p.config_cycles
}

// ------------------------------------------------------------ outcome

/// The simulated measurements of one survivor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSim {
    /// Baseline (no-DySER) cycles.
    pub baseline_cycles: u64,
    /// Accelerated cycles.
    pub cycles: u64,
    /// Accelerated-run energy (nJ), leakage scaled to the point's grid.
    pub energy_nj: f64,
    /// Cycles the core stalled on configuration loads.
    pub config_cycles: u64,
}

/// Extracts the DSE metrics from a harness result for a point's
/// geometry — shared by the local sweep and the `dyser-serve` job path
/// so both report identical numbers.
#[must_use]
pub fn point_sim(result: &KernelResult, fu_sites: usize) -> PointSim {
    let model = EnergyModel::default();
    let energy = model.estimate_for_geometry(&result.dyser.activity(), fu_sites);
    PointSim {
        baseline_cycles: result.baseline.cycles,
        cycles: result.dyser.cycles,
        energy_nj: energy.total_nj,
        config_cycles: result.dyser.core.stall_count(StallCause::DyserConfig),
    }
}

/// One survivor's full record: the point, its estimate, and its
/// simulated measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct DseRecord {
    /// The design point.
    pub point: DsePoint,
    /// The analytic estimate that admitted it.
    pub est: Estimate,
    /// The simulated measurements.
    pub sim: PointSim,
    /// Whether the point is on its kernel's simulated Pareto front
    /// (cycles / energy / config-load axes).
    pub pareto: bool,
}

impl DseRecord {
    /// Estimated over simulated cycles — the estimator-accuracy ratio
    /// reported for every survivor.
    #[must_use]
    pub fn accuracy_ratio(&self) -> f64 {
        self.est.cycles / self.sim.cycles.max(1) as f64
    }
}

/// The result of a sweep.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The plan that produced it.
    pub plan: DsePlan,
    /// Points enumerated.
    pub points_total: usize,
    /// Points discarded by the analytic pre-prune.
    pub points_pruned: usize,
    /// Every simulated survivor, in enumeration order.
    pub records: Vec<DseRecord>,
}

impl DseOutcome {
    /// The survivors on a simulated Pareto front, in enumeration order.
    pub fn pareto(&self) -> impl Iterator<Item = &DseRecord> {
        self.records.iter().filter(|r| r.pareto)
    }

    /// The worst under- and over-estimate across all survivors, as
    /// (min, max) estimated/simulated cycle ratios.
    #[must_use]
    pub fn accuracy(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for r in &self.records {
            let ratio = r.accuracy_ratio();
            lo = lo.min(ratio);
            hi = hi.max(ratio);
        }
        if self.records.is_empty() {
            (1.0, 1.0)
        } else {
            (lo, hi)
        }
    }

    /// Renders the Pareto front as a table (summary counts and accuracy
    /// in the notes). Rows go through the typed-arity path so a
    /// malformed row surfaces as an error, not a mid-sweep panic.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] if a row cannot be assembled.
    pub fn table(&self) -> Result<ExpTable, TableError> {
        let mut t = ExpTable::new(
            "DSE: Pareto front (cycles / energy / config-load)",
            &[
                "kernel", "geometry", "mix", "fifo", "mem", "unroll", "cycles", "energy uJ",
                "config cyc", "est cyc", "est/sim", "speedup",
            ],
        );
        for r in self.pareto() {
            let p = &r.point;
            t.try_row(vec![
                p.kernel.clone(),
                format!("{}x{}", p.rows, p.cols),
                p.mix.label().into(),
                p.fifo_depth.to_string(),
                p.mem.label().into(),
                p.unroll.to_string(),
                r.sim.cycles.to_string(),
                format!("{:.2}", r.sim.energy_nj / 1000.0),
                r.sim.config_cycles.to_string(),
                format!("{:.0}", r.est.cycles),
                format!("{:.2}", r.accuracy_ratio()),
                format!("{:.2}x", r.sim.baseline_cycles as f64 / r.sim.cycles.max(1) as f64),
            ])?;
        }
        let (lo, hi) = self.accuracy();
        t.note(format!(
            "{} points, {} pruned analytically, {} simulated, {} on the front",
            self.points_total,
            self.points_pruned,
            self.records.len(),
            self.pareto().count()
        ));
        t.note(format!(
            "estimator accuracy over survivors: est/sim cycles in [{lo:.2}, {hi:.2}] \
             (documented band [{EST_BAND_LOW}, {EST_BAND_HIGH}])"
        ));
        t.note(format!("n = {} per kernel; prune margin {PRUNE_MARGIN}", self.plan.n));
        Ok(t)
    }

    /// Renders the full outcome as the `BENCH_dse.json` document. The
    /// output is deterministic for a given plan (no wall-clock fields),
    /// so CI can diff two invocations byte-for-byte.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"bench\": \"repro dse\",");
        let kernels: Vec<String> =
            self.plan.kernels.iter().map(|k| format!("\"{k}\"")).collect();
        let _ = writeln!(s, "  \"kernels\": [{}],", kernels.join(", "));
        let _ = writeln!(s, "  \"n\": {},", self.plan.n);
        let _ = writeln!(s, "  \"points_total\": {},", self.points_total);
        let _ = writeln!(s, "  \"points_pruned\": {},", self.points_pruned);
        let _ = writeln!(s, "  \"points_simulated\": {},", self.records.len());
        let (lo, hi) = self.accuracy();
        let _ = writeln!(
            s,
            "  \"estimator\": {{\"band_low\": {EST_BAND_LOW}, \"band_high\": {EST_BAND_HIGH}, \
             \"prune_margin\": {PRUNE_MARGIN}, \"worst_under\": {lo:.4}, \"worst_over\": {hi:.4}}},"
        );
        let entry = |r: &DseRecord| {
            let p = &r.point;
            format!(
                "    {{\"kernel\": \"{}\", \"rows\": {}, \"cols\": {}, \"mix\": \"{}\", \
                 \"fifo\": {}, \"mem\": \"{}\", \"unroll\": {}, \"cycles\": {}, \
                 \"baseline_cycles\": {}, \"energy_nj\": {:.1}, \"config_cycles\": {}, \
                 \"est_cycles\": {:.0}, \"est_energy_nj\": {:.1}, \"pareto\": {}}}",
                p.kernel,
                p.rows,
                p.cols,
                p.mix.label(),
                p.fifo_depth,
                p.mem.label(),
                p.unroll,
                r.sim.cycles,
                r.sim.baseline_cycles,
                r.sim.energy_nj,
                r.sim.config_cycles,
                r.est.cycles,
                r.est.energy_nj,
                r.pareto,
            )
        };
        let front: Vec<String> = self.pareto().map(entry).collect();
        let _ = writeln!(s, "  \"pareto\": [\n{}\n  ],", front.join(",\n"));
        let all: Vec<String> = self.records.iter().map(entry).collect();
        let _ = writeln!(s, "  \"survivors\": [\n{}\n  ]", all.join(",\n"));
        s.push_str("}\n");
        s
    }
}

/// The report path for a sweep of `plan`: only the full committed sweep
/// ([`DsePlan::default`], bit for bit) may rebaseline `BENCH_dse.json`;
/// any filtered or modified plan writes `BENCH_dse.partial.json`
/// (gitignored) — the same convention `BENCH_repro.partial.json`
/// follows, so a narrowed sweep can never poison the committed surface.
#[must_use]
pub fn dse_path(plan: &DsePlan) -> &'static str {
    if *plan == DsePlan::default() {
        "BENCH_dse.json"
    } else {
        "BENCH_dse.partial.json"
    }
}

// ------------------------------------------------------------ driver

/// Marks each record that no other record of the same kernel dominates
/// on (cycles, energy, config): `q` dominates `p` when `q` is no worse
/// everywhere and strictly better somewhere.
fn mark_pareto(records: &mut [DseRecord]) {
    let dominates = |q: &PointSim, p: &PointSim| {
        let no_worse = q.cycles <= p.cycles
            && q.energy_nj <= p.energy_nj
            && q.config_cycles <= p.config_cycles;
        let better = q.cycles < p.cycles
            || q.energy_nj < p.energy_nj
            || q.config_cycles < p.config_cycles;
        no_worse && better
    };
    let same = |q: &PointSim, p: &PointSim| {
        q.cycles == p.cycles
            && q.energy_nj.to_bits() == p.energy_nj.to_bits()
            && q.config_cycles == p.config_cycles
    };
    for i in 0..records.len() {
        // An identical sim tuple earlier in enumeration order also
        // displaces `i`: the front keeps one representative of each
        // measurement, not every degenerate knob setting that produced it.
        let dominated = records.iter().enumerate().any(|(j, q)| {
            j != i
                && q.point.kernel == records[i].point.kernel
                && (dominates(&q.sim, &records[i].sim)
                    || (j < i && same(&q.sim, &records[i].sim)))
        });
        records[i].pareto = !dominated;
    }
}

/// Runs the sweep: enumerate, estimate, prune, simulate survivors
/// locally through the parallel harness, mark the Pareto front.
///
/// # Errors
///
/// Returns a typed [`DseError`] for invalid plans, compile failures, or
/// survivor simulation failures.
pub fn run_dse(plan: &DsePlan) -> Result<DseOutcome, DseError> {
    run_dse_batch(plan, true)
}

/// [`run_dse`] with the lockstep batch runner toggled explicitly — the
/// CLI's `--no-batch` flag routes here with `batch = false` to recover
/// the one-harness-task-per-point path. Both paths are bit-identical;
/// CI diffs their JSON byte-for-byte.
///
/// # Errors
///
/// See [`run_dse`].
pub fn run_dse_batch(plan: &DsePlan, batch: bool) -> Result<DseOutcome, DseError> {
    if batch {
        run_dse_with_many(plan, |requests| {
            let jobs: Vec<KernelJob> = requests
                .iter()
                .map(|(kernel, _, rc)| (kernel.case(plan.n, SEED), rc.clone()))
                .collect();
            run_kernel_batch(&jobs, default_workers())
                .into_iter()
                .zip(requests)
                .map(|(result, (_, point, rc))| {
                    let result = result.map_err(|e| format!("{point}: {e}"))?;
                    Ok(point_sim(&result, rc.system.geometry.fu_count()))
                })
                .collect()
        })
    } else {
        run_dse_with(plan, |kernel, point, rc| {
            let case = kernel.case(plan.n, SEED);
            let result = run_kernel(&case, rc).map_err(|e| format!("{point}: {e}"))?;
            Ok(point_sim(&result, rc.system.geometry.fu_count()))
        })
    }
}

/// [`run_dse`] with a caller-supplied per-point survivor runner — the
/// `--serve` client fans survivors out to a daemon through this hook,
/// and tests substitute reference backends. Points fan out across
/// worker threads with one hook call each.
///
/// # Errors
///
/// See [`run_dse`].
pub fn run_dse_with(
    plan: &DsePlan,
    simulate: impl Fn(&Kernel, &DsePoint, &RunConfig) -> Result<PointSim, String> + Sync,
) -> Result<DseOutcome, DseError> {
    run_dse_with_many(plan, |requests| {
        parallel_map(requests, default_workers(), |(kernel, point, rc)| {
            simulate(kernel, point, rc)
        })
    })
}

/// One survivor-simulation request handed to the [`run_dse_with_many`]
/// hook: the suite kernel, the design point, and its resolved run
/// configuration.
pub type DseRequest<'a> = (&'a Kernel, DsePoint, RunConfig);

/// The generalized sweep driver: enumerate, calibrate, estimate, prune,
/// then hand *all* survivors to `simulate_many` in one call so the hook
/// can batch them ([`run_dse_batch`] steps them in lockstep through
/// [`run_kernel_batch`]). The hook must return one result per request,
/// in request order.
///
/// # Errors
///
/// See [`run_dse`].
pub fn run_dse_with_many(
    plan: &DsePlan,
    simulate_many: impl Fn(&[DseRequest<'_>]) -> Vec<Result<PointSim, String>>,
) -> Result<DseOutcome, DseError> {
    plan.validate()?;
    let kernels = dse_kernels();
    let kernel_of = |name: &str| {
        kernels
            .iter()
            .find(|k| k.name == name)
            .expect("validated against the suite")
    };
    let points = plan.points();
    let points_total = points.len();

    // Calibration: one simulated anchor per kernel scales the analytic
    // model's absolute level. The anchors go through the same compile
    // cache and simulate hook as the survivors, as one small batch.
    let mut anchor_requests: Vec<DseRequest<'_>> = Vec::with_capacity(plan.kernels.len());
    for name in &plan.kernels {
        let kernel = kernel_of(name);
        let anchor = anchor_point(name);
        let rc = anchor.run_config(kernel, plan.backend)?;
        anchor_requests.push((kernel, anchor, rc));
    }
    let anchor_sims = simulate_many(&anchor_requests);
    let mut scales: HashMap<String, (f64, f64, f64)> = HashMap::new();
    for ((kernel, anchor, _), sim) in anchor_requests.iter().zip(anchor_sims) {
        let est = estimate_point(kernel, anchor, plan.n)?;
        let sim = sim.map_err(DseError::Run)?;
        scales.insert(
            kernel.name.to_owned(),
            (
                sim.cycles.max(1) as f64 / est.cycles.max(1.0),
                sim.baseline_cycles.max(1) as f64 / est.scalar_cycles.max(1.0),
                sim.energy_nj.max(1.0) / est.energy_nj.max(1.0),
            ),
        );
    }

    // Estimation: compile-bound, so parallelize over points; the compile
    // cache dedupes the (kernel, geometry, kinds, unroll) combinations.
    let estimates: Vec<Result<Estimate, DseError>> =
        parallel_map(&points, default_workers(), |p| {
            estimate_point(kernel_of(&p.kernel), p, plan.n)
        });
    let mut scored: Vec<(DsePoint, Estimate)> = Vec::with_capacity(points_total);
    for (p, e) in points.into_iter().zip(estimates) {
        let mut e = e?;
        let (accel_scale, scalar_scale, energy_scale) = scales[&p.kernel];
        e.cycles *= if e.accelerated { accel_scale } else { scalar_scale };
        e.energy_nj *= energy_scale;
        scored.push((p, e));
    }

    // Prune: a point survives unless a same-kernel point beats it by the
    // safety margin on every axis.
    let survivors: Vec<(DsePoint, Estimate)> = if plan.prune {
        scored
            .iter()
            .filter(|(p, e)| {
                !scored
                    .iter()
                    .any(|(q, qe)| q.kernel == p.kernel && q != p && prunes(qe, e))
            })
            .cloned()
            .collect()
    } else {
        scored.clone()
    };
    let points_pruned = points_total - survivors.len();

    // Simulate survivors: one hook call over the whole set, so the
    // batched runner can pack them into lockstep batches.
    let mut requests: Vec<DseRequest<'_>> = Vec::with_capacity(survivors.len());
    for (p, _) in &survivors {
        let kernel = kernel_of(&p.kernel);
        let rc = p.run_config(kernel, plan.backend)?;
        requests.push((kernel, p.clone(), rc));
    }
    let sims = simulate_many(&requests);
    let mut records = Vec::with_capacity(survivors.len());
    for ((p, e), sim) in survivors.into_iter().zip(sims) {
        let sim = sim.map_err(DseError::Run)?;
        records.push(DseRecord { point: p, est: e, sim, pareto: false });
    }
    mark_pareto(&mut records);
    Ok(DseOutcome { plan: plan.clone(), points_total, points_pruned, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> DsePlan {
        DsePlan {
            kernels: vec!["poly6".into()],
            dims: vec![2, 8],
            mixes: vec![FuMix::Default],
            fifos: vec![4],
            mems: vec![MemPreset::Default],
            unrolls: vec![1, 4],
            n: 64,
            prune: true,
            backend: Some(Backend::Compiled),
        }
    }

    #[test]
    fn default_plan_is_a_thousand_plus_points() {
        let plan = DsePlan::default();
        plan.validate().expect("default plan is valid");
        assert!(plan.points().len() >= 1000, "{}", plan.points().len());
    }

    #[test]
    fn validation_rejects_degenerate_axes() {
        let mut plan = tiny_plan();
        plan.dims = vec![0];
        assert!(matches!(
            plan.validate(),
            Err(DseError::Config(FabricConfigError::BadGeometry { rows: 0, cols: 0 }))
        ));
        let mut plan = tiny_plan();
        plan.dims = vec![17];
        assert!(matches!(plan.validate(), Err(DseError::Config(_))));
        let mut plan = tiny_plan();
        plan.fifos = vec![0];
        assert_eq!(
            plan.validate(),
            Err(DseError::Config(FabricConfigError::ZeroFifoDepth))
        );
        let mut plan = tiny_plan();
        plan.kernels = vec!["warp-drive".into()];
        assert_eq!(plan.validate(), Err(DseError::UnknownKernel("warp-drive".into())));
        let mut plan = tiny_plan();
        plan.mems.clear();
        assert_eq!(plan.validate(), Err(DseError::EmptyAxis("mems")));
    }

    #[test]
    fn tiny_sweep_runs_and_marks_a_front() {
        let outcome = run_dse(&tiny_plan()).expect("sweep");
        assert_eq!(outcome.points_total, 8);
        assert!(!outcome.records.is_empty(), "survivors must exist");
        assert!(outcome.pareto().count() >= 1, "the front is never empty");
        // The front is a subset of the survivors and non-dominated.
        for r in outcome.pareto() {
            let dominated = outcome.records.iter().any(|q| {
                q.point != r.point
                    && q.point.kernel == r.point.kernel
                    && q.sim.cycles <= r.sim.cycles
                    && q.sim.energy_nj <= r.sim.energy_nj
                    && q.sim.config_cycles <= r.sim.config_cycles
                    && (q.sim.cycles < r.sim.cycles
                        || q.sim.energy_nj < r.sim.energy_nj
                        || q.sim.config_cycles < r.sim.config_cycles)
            });
            assert!(!dominated, "{:?} is on the front but dominated", r.point);
        }
        let table = outcome.table().expect("table assembles");
        assert!(table.to_string().contains("Pareto"));
        let json = outcome.to_json();
        dyser_trace::validate_json(&json).expect("well-formed JSON");
        assert!(json.contains("\"pareto\": ["));
    }

    #[test]
    fn program_inner_kernels_sweep_by_name() {
        let plan = DsePlan {
            kernels: vec!["p2_hash".into(), "p3_stencil".into()],
            dims: vec![4],
            mixes: vec![FuMix::Default],
            fifos: vec![4],
            mems: vec![MemPreset::Default],
            unrolls: vec![1],
            n: 32,
            prune: false,
            backend: Some(Backend::Compiled),
        };
        plan.validate().expect("program inner kernels are known to the sweep");
        let outcome = run_dse(&plan).expect("sweep");
        assert_eq!(outcome.records.len(), 2, "one record per program region");
        for r in &outcome.records {
            assert!(r.sim.cycles > 0, "{:?} never simulated", r.point);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_dse(&tiny_plan()).expect("first run").to_json();
        let b = run_dse(&tiny_plan()).expect("second run").to_json();
        assert_eq!(a, b, "same plan, same bytes");
    }

    #[test]
    fn batched_sweep_matches_serial() {
        let batched = run_dse_batch(&tiny_plan(), true).expect("batched run").to_json();
        let serial = run_dse_batch(&tiny_plan(), false).expect("serial run").to_json();
        assert_eq!(batched, serial, "lockstep batching must not change a single byte");
    }

    #[test]
    fn point_display_and_errors_render() {
        let p = DsePoint {
            kernel: "poly6".into(),
            rows: 2,
            cols: 4,
            mix: FuMix::Universal,
            fifo_depth: 1,
            mem: MemPreset::Tiny,
            unroll: 8,
        };
        assert_eq!(p.to_string(), "poly6 2x4/universal fifo1 mem:tiny u8");
        assert!(DseError::UnknownKernel("x".into()).to_string().contains("x"));
        assert!(MemPreset::parse("bogus").is_err());
        assert!(FuMix::parse("bogus").is_err());
        for m in MemPreset::ALL {
            assert_eq!(MemPreset::parse(m.label()), Ok(m));
        }
        for m in FuMix::ALL {
            assert_eq!(FuMix::parse(m.label()), Ok(m));
        }
    }
}
