//! Reproduces the evaluation's tables and figures.
//!
//! ```text
//! cargo run -p dyser-bench --release --bin repro -- all          # e1..e10, p1..p3, ablation
//! cargo run -p dyser-bench --release --bin repro -- e2 e6
//! cargo run -p dyser-bench --release --bin repro -- e2 --csv     # machine-readable
//! cargo run -p dyser-bench --release --bin repro -- p1 --csv     # whole program (argv+stdin+syscalls)
//! cargo run -p dyser-bench --release --bin repro -- e2 --time    # BENCH_repro.json
//! cargo run -p dyser-bench --release --bin repro -- e2 --time --reps 2
//! cargo run -p dyser-bench --release --bin repro -- all --backend compiled
//! cargo run -p dyser-bench --release --bin repro -- stats        # cycle attribution
//! cargo run -p dyser-bench --release --bin repro -- e2 --trace t.json
//! cargo run -p dyser-bench --release --bin repro -- dse                # full sweep, BENCH_dse.json
//! cargo run -p dyser-bench --release --bin repro -- dse --kernels saxpy --dims 2,4 --n 64
//! cargo run -p dyser-bench --release --bin repro -- dse --no-prune --csv
//! cargo run -p dyser-bench --release --bin repro -- fuzz --cases 10000 --seed 0xD75E --shrink
//! cargo run -p dyser-bench --release --bin repro -- fuzz --cases 2000 --time
//! cargo run -p dyser-bench --release --bin repro -- all --csv --serve http://127.0.0.1:7878
//! ```
//!
//! `--time` only rebaselines `BENCH_repro.json` when the full suite ran;
//! partial runs (a subset of ids, or `fuzz --time`) go to
//! `BENCH_repro.partial.json` so they can never poison the
//! `load_reference` baselines.

use dyser_bench::serve::{self, JobError, JobRequest, JobResult};
use dyser_bench::{
    load_reference, run_experiment, run_fuzz_cli, stats_attribution, time_batch, time_experiments,
    time_fuzz, timing_json, Scale, EXPERIMENT_IDS,
};

/// Default measured repetitions per experiment in `--time` mode (after
/// one untimed warmup run); override with `--reps N`.
const TIME_REPS: usize = 3;

/// Per-component ring-buffer capacity in `--trace` mode. Big enough to
/// keep a whole microbenchmark run; longer runs keep the newest events.
const TRACE_EVENTS: usize = 65_536;

/// Default campaign size for `repro fuzz` when `--cases` is absent.
const FUZZ_CASES: u64 = 1000;

/// Default campaign seed for `repro fuzz` — the same fixed seed the CI
/// smoke job and the acceptance campaign use.
const FUZZ_SEED: u64 = 0xD75E;

/// Parses a `--flag value` pair out of `args`, removing both tokens.
/// Exits with a usage error when the value is missing or unparsable.
fn take_value<T>(args: &mut Vec<String>, flag: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(v) = args.get(i + 1).and_then(|v| parse(v)) else {
        eprintln!("{flag} requires a valid value");
        std::process::exit(2);
    };
    args.drain(i..=i + 1);
    Some(v)
}

/// Accepts `123` or `0x7b` seeds/counts.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Writes `contents` to `path`, exiting with a typed [`JobError::Io`]
/// message and a nonzero status on failure — file-system trouble is a
/// reportable outcome of user input, not a panic.
fn write_or_exit(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("repro: {}", JobError::Io(format!("write {path}: {e}")));
        std::process::exit(1);
    }
}

/// The timing-report path for a run covering `ids`: only a full-suite
/// run may rebaseline `BENCH_repro.json`; anything else (a subset of
/// experiments, or the fuzz campaign) writes `BENCH_repro.partial.json`.
fn timing_path(ids: &[&str]) -> &'static str {
    let full_suite = EXPERIMENT_IDS.iter().all(|id| ids.contains(id));
    if full_suite { "BENCH_repro.json" } else { "BENCH_repro.partial.json" }
}

/// `repro dse [--kernels a,b] [--dims 2,4] [--mixes default,universal]
/// [--fifos 1,4] [--mems default,tiny] [--unrolls 1,8] [--n N]
/// [--no-prune] [--no-batch] [--csv] [--backend B] [--serve URL]`: the
/// design-space exploration driver. Survivors run through the lockstep
/// batch scheduler unless `--no-batch` selects the serial
/// one-task-per-point path (both are bit-identical). Axis values are validated up front (a `--dims 0`
/// or `--fifos 0` sweep exits with the fabric's own typed configuration
/// error); any filter flag redirects the report to
/// `BENCH_dse.partial.json`. Never returns.
fn dse_main(mut args: Vec<String>) -> ! {
    use dyser_bench::dse::{self, DsePlan, FuMix, MemPreset, PointSim};
    let mut plan = DsePlan::default();
    let parse_usizes = |v: &str| -> Option<Vec<usize>> {
        v.split(',').map(|s| s.trim().parse::<usize>().ok()).collect()
    };
    if let Some(k) = take_value(&mut args, "--kernels", |v| {
        Some(v.split(',').map(|s| s.trim().to_owned()).collect::<Vec<_>>())
    }) {
        plan.kernels = k;
    }
    if let Some(d) = take_value(&mut args, "--dims", parse_usizes) {
        plan.dims = d;
    }
    if let Some(f) = take_value(&mut args, "--fifos", parse_usizes) {
        plan.fifos = f;
    }
    if let Some(u) = take_value(&mut args, "--unrolls", parse_usizes) {
        plan.unrolls = u;
    }
    if let Some(m) = take_value(&mut args, "--mems", |v| {
        v.split(',')
            .map(|s| MemPreset::parse(s.trim()).map_err(|e| eprintln!("{e}")).ok())
            .collect::<Option<Vec<_>>>()
    }) {
        plan.mems = m;
    }
    if let Some(m) = take_value(&mut args, "--mixes", |v| {
        v.split(',')
            .map(|s| FuMix::parse(s.trim()).map_err(|e| eprintln!("{e}")).ok())
            .collect::<Option<Vec<_>>>()
    }) {
        plan.mixes = m;
    }
    if let Some(n) = take_value(&mut args, "--n", |v| v.parse().ok().filter(|&n: &usize| n > 0)) {
        plan.n = n;
    }
    if let Some(b) = take_value(&mut args, "--backend", |v| {
        dyser_core::Backend::parse(v).map_err(|e| eprintln!("{e}")).ok()
    }) {
        plan.backend = Some(b);
    }
    let serve_url = take_value(&mut args, "--serve", |v| Some(v.to_owned()));
    let csv = args.iter().any(|a| a == "--csv");
    if args.iter().any(|a| a == "--no-prune") {
        plan.prune = false;
    }
    let batch = !args.iter().any(|a| a == "--no-batch");
    args.retain(|a| a != "--csv" && a != "--no-prune" && a != "--no-batch");
    if let Some(stray) = args.first() {
        eprintln!(
            "unknown dse argument `{stray}`; valid: --kernels --dims --mixes --fifos \
             --mems --unrolls --n N --no-prune --no-batch --csv --backend B --serve URL"
        );
        std::process::exit(2);
    }
    if let Err(e) = plan.validate() {
        eprintln!("repro dse: {e}");
        std::process::exit(2);
    }
    let outcome = match &serve_url {
        Some(url) => dse::run_dse_with(&plan, |_, p, _| {
            let job = JobRequest::DsePoint {
                kernel: p.kernel.clone(),
                n: plan.n,
                rows: p.rows,
                cols: p.cols,
                universal: p.mix == FuMix::Universal,
                fifo_depth: p.fifo_depth,
                mem: p.mem.label().into(),
                unroll: p.unroll,
                run: serve::RunSpec { backend: plan.backend, ..Default::default() },
            };
            match serve::submit(url, &job) {
                Ok(JobResult::DsePoint {
                    baseline_cycles, cycles, energy_nj, config_cycles, ..
                }) => Ok(PointSim { baseline_cycles, cycles, energy_nj, config_cycles }),
                Ok(other) => Err(format!("{p} via {url}: unexpected result {other:?}")),
                Err(e) => Err(format!("{p} via {url}: {e}")),
            }
        }),
        None => dse::run_dse_batch(&plan, batch),
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro dse: {e}");
            std::process::exit(1);
        }
    };
    match outcome.table() {
        Ok(table) => {
            if csv {
                println!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("repro dse: {e}");
            std::process::exit(1);
        }
    }
    let path = dse::dse_path(&plan);
    write_or_exit(path, &outcome.to_json());
    println!("wrote {path}");
    std::process::exit(0);
}

/// `repro fuzz [--cases N] [--seed S] [--shrink] [--no-batch]
/// [--time [--reps N]]`: the differential-fuzzing campaign driver.
/// Oracle legs run through the lockstep batch scheduler unless
/// `--no-batch` selects the serial path (both are bit-identical).
/// Never returns.
fn fuzz_main(mut args: Vec<String>) -> ! {
    let cases = take_value(&mut args, "--cases", parse_u64).unwrap_or(FUZZ_CASES);
    let seed = take_value(&mut args, "--seed", parse_u64).unwrap_or(FUZZ_SEED);
    let reps = take_value(&mut args, "--reps", |v| {
        v.parse::<usize>().ok().filter(|&n| n > 0)
    })
    .unwrap_or(TIME_REPS);
    let shrink = args.iter().any(|a| a == "--shrink");
    let time = args.iter().any(|a| a == "--time");
    let batch = !args.iter().any(|a| a == "--no-batch");
    args.retain(|a| a != "--shrink" && a != "--time" && a != "--no-batch");
    if let Some(stray) = args.first() {
        eprintln!(
            "unknown fuzz argument `{stray}`; valid: --cases N --seed S --shrink --no-batch \
             --time --reps N"
        );
        std::process::exit(2);
    }
    if time {
        let reference = load_reference("BENCH_repro.json");
        let (timing, cases_per_sec) = time_fuzz(cases, seed, reps);
        println!(
            "{:>8}  median {:>9.3} ms  min {:>9.3} ms  {:>12} cycles  {:>8.2} Mcyc/s  {:.1} cases/s",
            timing.id,
            timing.wall_ms_median,
            timing.wall_ms_min,
            timing.sim_cycles,
            timing.mcycles_per_sec,
            cases_per_sec
        );
        let json = timing_json(&[timing], reps, &reference, Some(cases_per_sec), None);
        let path = timing_path(&[]);
        write_or_exit(path, &json);
        println!("wrote {path}");
        std::process::exit(0);
    }
    std::process::exit(run_fuzz_cli(cases, seed, shrink, batch));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        fuzz_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("dse") {
        dse_main(args.split_off(1));
    }
    let backend = take_value(&mut args, "--backend", |v| {
        dyser_core::Backend::parse(v)
            .map_err(|e| eprintln!("{e}"))
            .ok()
    });
    let serve_url = take_value(&mut args, "--serve", |v| Some(v.to_owned()));
    if serve_url.is_none() {
        if let Some(backend) = backend {
            dyser_core::set_backend_override(Some(backend));
        }
    }
    let csv = args.iter().any(|a| a == "--csv");
    let time = args.iter().any(|a| a == "--time");
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--trace requires an output path");
            std::process::exit(2);
        }
        let path = args[i + 1].clone();
        args.drain(i..=i + 1);
        path
    });
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .map(|i| {
            let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
            else {
                eprintln!("--reps requires a positive repetition count");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            n
        })
        .unwrap_or(TIME_REPS);
    args.retain(|a| a != "--csv" && a != "--time");
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if *id != "stats" && !EXPERIMENT_IDS.contains(id) {
            eprintln!("unknown experiment `{id}`; valid: {EXPERIMENT_IDS:?} or `stats`");
            std::process::exit(2);
        }
    }
    if let Some(url) = serve_url {
        if time || trace_path.is_some() {
            eprintln!("--serve does not support --time or --trace; run those locally");
            std::process::exit(2);
        }
        for id in ids {
            let job = JobRequest::Experiment { id: id.to_owned(), csv, scale: 1.0, backend };
            match serve::submit(&url, &job) {
                Ok(JobResult::Experiment { text }) => println!("{text}"),
                Ok(other) => {
                    eprintln!("repro: {id} via {url}: unexpected result {other:?}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("repro: {id} via {url}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    if time {
        let reference = load_reference("BENCH_repro.json");
        let timings = time_experiments(&ids, reps);
        for t in &timings {
            if t.config_only {
                println!(
                    "{:>8}  median {:>9.3} ms  min {:>9.3} ms  (config only, no simulation)",
                    t.id, t.wall_ms_median, t.wall_ms_min
                );
            } else {
                println!(
                    "{:>8}  median {:>9.3} ms  min {:>9.3} ms  {:>12} cycles  {:>8.2} Mcyc/s",
                    t.id, t.wall_ms_median, t.wall_ms_min, t.sim_cycles, t.mcycles_per_sec
                );
            }
        }
        let batch_mps = time_batch(reps);
        println!("{:>8}  {batch_mps:>8.2} Mcyc/s  (suite as one ragged lockstep batch)", "batch");
        let json = timing_json(&timings, reps, &reference, None, Some(batch_mps));
        let path = timing_path(&ids);
        write_or_exit(path, &json);
        println!("wrote {path}");
        return;
    }
    if trace_path.is_some() {
        dyser_core::set_trace_capacity(TRACE_EVENTS);
    }
    for id in ids {
        let table =
            if id == "stats" { stats_attribution(Scale(1.0)) } else { run_experiment(id) };
        if csv {
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
    if let Some(path) = trace_path {
        let runs = dyser_core::take_traces();
        let events: usize = runs.iter().map(|r| r.events.len()).sum();
        let json = dyser_trace::chrome_trace_json(&runs);
        write_or_exit(&path, &json);
        println!("wrote {path}: {} runs, {events} events (chrome://tracing format)", runs.len());
    }
}
