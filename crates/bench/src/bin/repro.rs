//! Reproduces the evaluation's tables and figures.
//!
//! ```text
//! cargo run -p dyser-bench --release --bin repro -- all
//! cargo run -p dyser-bench --release --bin repro -- e2 e6
//! cargo run -p dyser-bench --release --bin repro -- e2 --csv   # machine-readable
//! cargo run -p dyser-bench --release --bin repro -- e2 --time  # BENCH_repro.json
//! ```

use dyser_bench::{run_experiment, time_experiments, timing_json, EXPERIMENT_IDS};

/// Measured repetitions per experiment in `--time` mode (after one
/// untimed warmup run).
const TIME_REPS: usize = 3;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let time = args.iter().any(|a| a == "--time");
    args.retain(|a| a != "--csv" && a != "--time");
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !EXPERIMENT_IDS.contains(id) {
            eprintln!("unknown experiment `{id}`; valid: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
    }
    if time {
        let timings = time_experiments(&ids, TIME_REPS);
        for t in &timings {
            println!(
                "{:>8}  median {:>9.3} ms  min {:>9.3} ms  {:>12} cycles  {:>8.2} Mcyc/s",
                t.id, t.wall_ms_median, t.wall_ms_min, t.sim_cycles, t.mcycles_per_sec
            );
        }
        let json = timing_json(&timings, TIME_REPS);
        std::fs::write("BENCH_repro.json", &json).expect("write BENCH_repro.json");
        println!("wrote BENCH_repro.json");
        return;
    }
    for id in ids {
        let table = run_experiment(id);
        if csv {
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
