//! Reproduces the evaluation's tables and figures.
//!
//! ```text
//! cargo run -p dyser-bench --release --bin repro -- all
//! cargo run -p dyser-bench --release --bin repro -- e2 e6
//! cargo run -p dyser-bench --release --bin repro -- e2 --csv   # machine-readable
//! ```

use dyser_bench::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        if !EXPERIMENT_IDS.contains(&id) {
            eprintln!("unknown experiment `{id}`; valid: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
        let table = run_experiment(id);
        if csv {
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
