//! Reproduces the evaluation's tables and figures.
//!
//! ```text
//! cargo run -p dyser-bench --release --bin repro -- all
//! cargo run -p dyser-bench --release --bin repro -- e2 e6
//! cargo run -p dyser-bench --release --bin repro -- e2 --csv     # machine-readable
//! cargo run -p dyser-bench --release --bin repro -- e2 --time    # BENCH_repro.json
//! cargo run -p dyser-bench --release --bin repro -- e2 --time --reps 2
//! cargo run -p dyser-bench --release --bin repro -- stats        # cycle attribution
//! cargo run -p dyser-bench --release --bin repro -- e2 --trace t.json
//! ```

use dyser_bench::{
    load_reference, run_experiment, stats_attribution, time_experiments, timing_json, Scale,
    EXPERIMENT_IDS,
};

/// Default measured repetitions per experiment in `--time` mode (after
/// one untimed warmup run); override with `--reps N`.
const TIME_REPS: usize = 3;

/// Per-component ring-buffer capacity in `--trace` mode. Big enough to
/// keep a whole microbenchmark run; longer runs keep the newest events.
const TRACE_EVENTS: usize = 65_536;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let time = args.iter().any(|a| a == "--time");
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--trace requires an output path");
            std::process::exit(2);
        }
        let path = args[i + 1].clone();
        args.drain(i..=i + 1);
        path
    });
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .map(|i| {
            let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
            else {
                eprintln!("--reps requires a positive repetition count");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            n
        })
        .unwrap_or(TIME_REPS);
    args.retain(|a| a != "--csv" && a != "--time");
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if *id != "stats" && !EXPERIMENT_IDS.contains(id) {
            eprintln!("unknown experiment `{id}`; valid: {EXPERIMENT_IDS:?} or `stats`");
            std::process::exit(2);
        }
    }
    if time {
        let reference = load_reference("BENCH_repro.json");
        let timings = time_experiments(&ids, reps);
        for t in &timings {
            println!(
                "{:>8}  median {:>9.3} ms  min {:>9.3} ms  {:>12} cycles  {:>8.2} Mcyc/s",
                t.id, t.wall_ms_median, t.wall_ms_min, t.sim_cycles, t.mcycles_per_sec
            );
        }
        let json = timing_json(&timings, reps, &reference);
        std::fs::write("BENCH_repro.json", &json).expect("write BENCH_repro.json");
        println!("wrote BENCH_repro.json");
        return;
    }
    if trace_path.is_some() {
        dyser_core::set_trace_capacity(TRACE_EVENTS);
    }
    for id in ids {
        let table =
            if id == "stats" { stats_attribution(Scale(1.0)) } else { run_experiment(id) };
        if csv {
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
    if let Some(path) = trace_path {
        let runs = dyser_core::take_traces();
        let events: usize = runs.iter().map(|r| r.events.len()).sum();
        let json = dyser_trace::chrome_trace_json(&runs);
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}: {} runs, {events} events (chrome://tracing format)", runs.len());
    }
}
