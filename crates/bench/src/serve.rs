//! The simulation-service protocol: job requests, job results, typed
//! job errors, and the blocking HTTP/JSON client behind `repro --serve`.
//!
//! The wire format is deliberately small: one `POST /job` carrying a
//! JSON request, one JSON reply carrying either a result or a typed
//! error — the transport/driver split of an FPGA bring-up harness, with
//! TCP standing in for the board link. Everything is hand-written over
//! `std::net` and the dependency-free JSON parser in `dyser-trace`, so
//! the service adds no external dependencies.
//!
//! The daemon itself lives in `crates/serve` (`dyser-serve`); this
//! module is the shared contract between it and its clients.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dyser_core::{Backend, HarnessError, SysError};
use dyser_trace::{json_escaped, parse_json, JsonValue};

/// Default per-job cycle budget when a request does not carry one —
/// the harness's own default.
pub const DEFAULT_JOB_CYCLES: u64 = 50_000_000;

/// I/O timeout on service sockets, both sides. A stuck peer must never
/// wedge a shard worker (or a client) forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(120);

// ------------------------------------------------------------ JobError

/// Typed failure of a service job — and of the `repro` CLI's own I/O
/// paths, which reuse it so file-write failures exit with a message
/// instead of a panic.
///
/// Every variant serializes into the reply envelope; a malformed or
/// impossible job (the fuzzer's zero-depth FIFO configurations, an
/// unknown kernel, a busted JSON body) must come back as one of these,
/// never as a worker panic.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The request body was not a valid job description.
    InvalidRequest(String),
    /// The named kernel is not in the workload suite.
    UnknownKernel(String),
    /// The experiment id is not one of `EXPERIMENT_IDS` or `stats`.
    UnknownExperiment(String),
    /// The job's `SystemConfig` describes impossible hardware
    /// (`SysError::InvalidConfig` on the wire).
    InvalidConfig(String),
    /// Compilation (or IR parsing) failed.
    Compile(String),
    /// The job's cycle budget elapsed without `halt` — the system's
    /// `SysError::Timeout`, surfaced with the cycles it ran.
    Timeout {
        /// Cycles executed when the budget elapsed.
        cycles: u64,
    },
    /// The simulated core faulted or another run error occurred.
    Run(String),
    /// An output buffer mismatched the reference (a simulator or
    /// compiler bug, reported rather than swallowed).
    Mismatch(String),
    /// The admission queue was full; retry later.
    Overloaded(String),
    /// A file or socket operation failed.
    Io(String),
    /// The HTTP/JSON exchange itself was malformed.
    Protocol(String),
    /// A worker caught a panic while executing the job.
    Internal(String),
}

impl JobError {
    /// The stable machine-readable tag for this error.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::InvalidRequest(_) => "invalid-request",
            JobError::UnknownKernel(_) => "unknown-kernel",
            JobError::UnknownExperiment(_) => "unknown-experiment",
            JobError::InvalidConfig(_) => "invalid-config",
            JobError::Compile(_) => "compile",
            JobError::Timeout { .. } => "timeout",
            JobError::Run(_) => "run",
            JobError::Mismatch(_) => "mismatch",
            JobError::Overloaded(_) => "overloaded",
            JobError::Io(_) => "io",
            JobError::Protocol(_) => "protocol",
            JobError::Internal(_) => "internal",
        }
    }

    /// The HTTP status the daemon replies with (the JSON envelope is
    /// authoritative; the status is a courtesy for curl users).
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            JobError::InvalidRequest(_)
            | JobError::UnknownKernel(_)
            | JobError::UnknownExperiment(_)
            | JobError::InvalidConfig(_)
            | JobError::Compile(_)
            | JobError::Protocol(_) => 400,
            JobError::Timeout { .. } => 408,
            JobError::Overloaded(_) => 503,
            JobError::Run(_) | JobError::Mismatch(_) | JobError::Io(_) | JobError::Internal(_) => {
                500
            }
        }
    }

    /// Folds a harness failure into the wire taxonomy, splitting out the
    /// configuration and budget cases the daemon treats specially.
    #[must_use]
    pub fn from_harness(e: &HarnessError) -> JobError {
        match e {
            HarnessError::Compile(c) => JobError::Compile(c.to_string()),
            HarnessError::Run { source: SysError::Timeout { cycles }, .. } => {
                JobError::Timeout { cycles: *cycles }
            }
            HarnessError::Run { source: SysError::InvalidConfig(c), .. } => {
                JobError::InvalidConfig(c.to_string())
            }
            HarnessError::Run { .. } => JobError::Run(e.to_string()),
            HarnessError::Mismatch { .. }
            | HarnessError::StdoutMismatch { .. }
            | HarnessError::ExitMismatch { .. } => JobError::Mismatch(e.to_string()),
        }
    }

    /// Serializes into the error member of a reply envelope.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"kind\": \"{}\", \"message\": \"{}\"",
            self.kind(),
            json_escaped(&self.to_string())
        );
        if let JobError::Timeout { cycles } = self {
            s.push_str(&format!(", \"cycles\": {cycles}"));
        }
        s.push('}');
        s
    }

    /// Reconstructs a `JobError` from a reply envelope's error member.
    fn from_json(v: &JsonValue) -> JobError {
        let message = v
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap_or("(no message)")
            .to_owned();
        match v.get("kind").and_then(JsonValue::as_str).unwrap_or("protocol") {
            "invalid-request" => JobError::InvalidRequest(message),
            "unknown-kernel" => JobError::UnknownKernel(message),
            "unknown-experiment" => JobError::UnknownExperiment(message),
            "invalid-config" => JobError::InvalidConfig(message),
            "compile" => JobError::Compile(message),
            "timeout" => JobError::Timeout {
                cycles: v.get("cycles").and_then(JsonValue::as_u64).unwrap_or(0),
            },
            "run" => JobError::Run(message),
            "mismatch" => JobError::Mismatch(message),
            "overloaded" => JobError::Overloaded(message),
            "io" => JobError::Io(message),
            "internal" => JobError::Internal(message),
            _ => JobError::Protocol(message),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            JobError::UnknownKernel(m) => write!(f, "unknown kernel `{m}`"),
            JobError::UnknownExperiment(m) => write!(f, "unknown experiment `{m}`"),
            JobError::InvalidConfig(m) => write!(f, "invalid system configuration: {m}"),
            JobError::Compile(m) => write!(f, "compile failed: {m}"),
            JobError::Timeout { cycles } => write!(f, "cycle budget elapsed after {cycles} cycles"),
            JobError::Run(m) => write!(f, "run failed: {m}"),
            JobError::Mismatch(m) => write!(f, "output mismatch: {m}"),
            JobError::Overloaded(m) => write!(f, "service overloaded: {m}"),
            JobError::Io(m) => write!(f, "i/o error: {m}"),
            JobError::Protocol(m) => write!(f, "protocol error: {m}"),
            JobError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e.to_string())
    }
}

// ------------------------------------------------------- request types

/// Per-job execution knobs shared by kernel and IR jobs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSpec {
    /// Execution engine; `None` means the harness default.
    pub backend: Option<Backend>,
    /// Use the per-cycle reference path (`System::run_stepped`).
    pub stepped: bool,
    /// Cycle budget; `None` means [`DEFAULT_JOB_CYCLES`]. The daemon
    /// clamps it to its own cap, and the budget is enforced through the
    /// system's `Timeout` plumbing mid-run.
    pub max_cycles: Option<u64>,
    /// Capture and return a Chrome-trace artifact for the runs.
    pub trace: bool,
}

/// System-hardware overrides for kernel and IR jobs; unset fields keep
/// the harness defaults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemSpec {
    /// Fabric grid rows.
    pub rows: Option<usize>,
    /// Fabric grid columns.
    pub cols: Option<usize>,
    /// Port FIFO depth (zero is impossible hardware and comes back as
    /// an `invalid-config` error, never a panic).
    pub fifo_depth: Option<usize>,
    /// Whether a fabric is attached at all.
    pub has_fabric: Option<bool>,
}

/// An initial- or expected-memory region: `(address, 64-bit words)`.
pub type MemImage = Vec<(u64, Vec<u64>)>;

/// One compile+simulate job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// Run a whole experiment (`e1`..`e10`, `ablation`, or `stats`) and
    /// return its rendered table.
    Experiment {
        /// Experiment id.
        id: String,
        /// Render CSV (`to_csv`) instead of the human table.
        csv: bool,
        /// Input size scale (1.0 = the full evaluation sizes).
        scale: f64,
        /// Backend for every run of the experiment.
        backend: Option<Backend>,
    },
    /// Run one suite kernel by name, baseline and DySER, and verify both.
    Kernel {
        /// Suite kernel name (e.g. `saxpy`).
        name: String,
        /// Problem size; `None` uses the kernel's default.
        n: Option<usize>,
        /// Execution knobs.
        run: RunSpec,
        /// Hardware overrides.
        system: SystemSpec,
    },
    /// Compile and run IR text (the compiler's own textual format).
    Ir {
        /// The IR module text.
        text: String,
        /// Function to run; `None` uses the module's first function.
        function: Option<String>,
        /// Arguments passed in `%o0..%o5`.
        args: Vec<u64>,
        /// Initial memory contents.
        init: MemImage,
        /// Expected memory after the run (empty = unverified).
        expected: MemImage,
        /// Execution knobs.
        run: RunSpec,
        /// Hardware overrides.
        system: SystemSpec,
    },
    /// Run one whole-program workload (`p1`..`p3`) through the syscall
    /// emulation layer, baseline and DySER, verify stdout and exit code
    /// on both legs, and return the captured output.
    Program {
        /// Program name (`p1`, `p2`, `p3`).
        name: String,
        /// Stdin size in 8-byte words; `None` uses the default.
        n: Option<usize>,
        /// Execution knobs.
        run: RunSpec,
    },
    /// Simulate one design-space-exploration point (`repro dse
    /// --serve`) and return its sweep metrics: cycles, geometry-scaled
    /// energy, and config-load stall cycles.
    DsePoint {
        /// Suite kernel name.
        kernel: String,
        /// Problem size.
        n: usize,
        /// Fabric grid rows.
        rows: usize,
        /// Fabric grid columns.
        cols: usize,
        /// All-universal FU mix instead of the default checkerboard.
        universal: bool,
        /// Port FIFO depth.
        fifo_depth: usize,
        /// Memory preset label (`default`|`tiny`|`perfect`).
        mem: String,
        /// Requested unroll factor.
        unroll: usize,
        /// Execution knobs (backend, cycle budget).
        run: RunSpec,
    },
}

/// Renders a `u64` as a JSON string (`"0x..."`). Raw JSON numbers stop
/// being exact at 2^53, and arguments and memory words are frequently
/// f64 bit patterns that need all 64 bits.
fn u64_json(v: u64) -> String {
    format!("\"{v:#x}\"")
}

/// Accepts a `u64` encoded as a JSON number, a `"0x..."` string, or a
/// decimal string.
fn json_u64(v: &JsonValue) -> Option<u64> {
    if let Some(n) = v.as_u64() {
        return Some(n);
    }
    let s = v.as_str()?;
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn mem_image_json(image: &MemImage) -> String {
    let regions: Vec<String> = image
        .iter()
        .map(|(addr, words)| {
            let ws: Vec<String> = words.iter().map(|w| u64_json(*w)).collect();
            format!("{{\"addr\": {}, \"words\": [{}]}}", u64_json(*addr), ws.join(", "))
        })
        .collect();
    format!("[{}]", regions.join(", "))
}

fn parse_mem_image(v: Option<&JsonValue>, what: &str) -> Result<MemImage, JobError> {
    let Some(v) = v else { return Ok(Vec::new()) };
    let items = v
        .as_array()
        .ok_or_else(|| JobError::InvalidRequest(format!("`{what}` must be an array")))?;
    items
        .iter()
        .map(|region| {
            let addr = region.get("addr").and_then(json_u64).ok_or_else(|| {
                JobError::InvalidRequest(format!("`{what}` region needs an `addr`"))
            })?;
            let words = region
                .get("words")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    JobError::InvalidRequest(format!("`{what}` region needs a `words` array"))
                })?
                .iter()
                .map(|w| {
                    json_u64(w).ok_or_else(|| {
                        JobError::InvalidRequest(format!("`{what}` words must be u64s"))
                    })
                })
                .collect::<Result<Vec<u64>, JobError>>()?;
            Ok((addr, words))
        })
        .collect()
}

impl RunSpec {
    fn json_fields(&self, out: &mut Vec<String>) {
        if let Some(b) = self.backend {
            out.push(format!("\"backend\": \"{}\"", b.label()));
        }
        if self.stepped {
            out.push("\"stepped\": true".into());
        }
        if let Some(mc) = self.max_cycles {
            out.push(format!("\"max_cycles\": {}", u64_json(mc)));
        }
        if self.trace {
            out.push("\"trace\": true".into());
        }
    }

    fn from_json(v: &JsonValue) -> Result<RunSpec, JobError> {
        let backend = match v.get("backend").and_then(JsonValue::as_str) {
            None => None,
            Some(s) => Some(Backend::parse(s).map_err(JobError::InvalidRequest)?),
        };
        Ok(RunSpec {
            backend,
            stepped: v.get("stepped").and_then(JsonValue::as_bool).unwrap_or(false),
            max_cycles: v.get("max_cycles").and_then(json_u64),
            trace: v.get("trace").and_then(JsonValue::as_bool).unwrap_or(false),
        })
    }
}

impl SystemSpec {
    fn json_fields(&self, out: &mut Vec<String>) {
        let mut fields = Vec::new();
        if let Some(r) = self.rows {
            fields.push(format!("\"rows\": {r}"));
        }
        if let Some(c) = self.cols {
            fields.push(format!("\"cols\": {c}"));
        }
        if let Some(d) = self.fifo_depth {
            fields.push(format!("\"fifo_depth\": {d}"));
        }
        if let Some(h) = self.has_fabric {
            fields.push(format!("\"has_fabric\": {h}"));
        }
        if !fields.is_empty() {
            out.push(format!("\"system\": {{{}}}", fields.join(", ")));
        }
    }

    fn from_json(v: Option<&JsonValue>) -> Result<SystemSpec, JobError> {
        let Some(v) = v else { return Ok(SystemSpec::default()) };
        let usize_field = |key: &str| -> Result<Option<usize>, JobError> {
            match v.get(key) {
                None => Ok(None),
                Some(f) => f
                    .as_u64()
                    .map(|n| Some(n as usize))
                    .ok_or_else(|| JobError::InvalidRequest(format!("`{key}` must be an integer"))),
            }
        };
        Ok(SystemSpec {
            rows: usize_field("rows")?,
            cols: usize_field("cols")?,
            fifo_depth: usize_field("fifo_depth")?,
            has_fabric: v.get("has_fabric").and_then(JsonValue::as_bool),
        })
    }
}

impl JobRequest {
    /// Serializes the job for the wire.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        match self {
            JobRequest::Experiment { id, csv, scale, backend } => {
                fields.push("\"kind\": \"experiment\"".into());
                fields.push(format!("\"id\": \"{}\"", json_escaped(id)));
                fields.push(format!("\"csv\": {csv}"));
                fields.push(format!("\"scale\": {scale}"));
                if let Some(b) = backend {
                    fields.push(format!("\"backend\": \"{}\"", b.label()));
                }
            }
            JobRequest::Kernel { name, n, run, system } => {
                fields.push("\"kind\": \"kernel\"".into());
                fields.push(format!("\"name\": \"{}\"", json_escaped(name)));
                if let Some(n) = n {
                    fields.push(format!("\"n\": {n}"));
                }
                run.json_fields(&mut fields);
                system.json_fields(&mut fields);
            }
            JobRequest::Ir { text, function, args, init, expected, run, system } => {
                fields.push("\"kind\": \"ir\"".into());
                fields.push(format!("\"ir\": \"{}\"", json_escaped(text)));
                if let Some(f) = function {
                    fields.push(format!("\"function\": \"{}\"", json_escaped(f)));
                }
                let a: Vec<String> = args.iter().map(|v| u64_json(*v)).collect();
                fields.push(format!("\"args\": [{}]", a.join(", ")));
                fields.push(format!("\"init\": {}", mem_image_json(init)));
                fields.push(format!("\"expected\": {}", mem_image_json(expected)));
                run.json_fields(&mut fields);
                system.json_fields(&mut fields);
            }
            JobRequest::Program { name, n, run } => {
                fields.push("\"kind\": \"program\"".into());
                fields.push(format!("\"name\": \"{}\"", json_escaped(name)));
                if let Some(n) = n {
                    fields.push(format!("\"n\": {n}"));
                }
                run.json_fields(&mut fields);
            }
            JobRequest::DsePoint { kernel, n, rows, cols, universal, fifo_depth, mem, unroll, run } => {
                fields.push("\"kind\": \"dse-point\"".into());
                fields.push(format!("\"kernel\": \"{}\"", json_escaped(kernel)));
                fields.push(format!("\"n\": {n}"));
                fields.push(format!("\"rows\": {rows}"));
                fields.push(format!("\"cols\": {cols}"));
                fields.push(format!("\"universal\": {universal}"));
                fields.push(format!("\"fifo_depth\": {fifo_depth}"));
                fields.push(format!("\"mem\": \"{}\"", json_escaped(mem)));
                fields.push(format!("\"unroll\": {unroll}"));
                run.json_fields(&mut fields);
            }
        }
        format!("{{{}}}", fields.join(", "))
    }

    /// Parses a job from a request body.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::InvalidRequest`] describing the first problem.
    pub fn parse(body: &str) -> Result<JobRequest, JobError> {
        let v = parse_json(body).map_err(JobError::InvalidRequest)?;
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| JobError::InvalidRequest("missing `kind`".into()))?;
        match kind {
            "experiment" => Ok(JobRequest::Experiment {
                id: v
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| JobError::InvalidRequest("experiment job needs an `id`".into()))?
                    .to_owned(),
                csv: v.get("csv").and_then(JsonValue::as_bool).unwrap_or(false),
                scale: v.get("scale").and_then(JsonValue::as_f64).unwrap_or(1.0),
                backend: match v.get("backend").and_then(JsonValue::as_str) {
                    None => None,
                    Some(s) => Some(Backend::parse(s).map_err(JobError::InvalidRequest)?),
                },
            }),
            "kernel" => Ok(JobRequest::Kernel {
                name: v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| JobError::InvalidRequest("kernel job needs a `name`".into()))?
                    .to_owned(),
                n: v.get("n").and_then(JsonValue::as_u64).map(|n| n as usize),
                run: RunSpec::from_json(&v)?,
                system: SystemSpec::from_json(v.get("system"))?,
            }),
            "ir" => Ok(JobRequest::Ir {
                text: v
                    .get("ir")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| JobError::InvalidRequest("ir job needs an `ir` text".into()))?
                    .to_owned(),
                function: v.get("function").and_then(JsonValue::as_str).map(str::to_owned),
                args: v
                    .get("args")
                    .and_then(JsonValue::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|a| {
                        json_u64(a)
                            .ok_or_else(|| JobError::InvalidRequest("`args` must be u64s".into()))
                    })
                    .collect::<Result<Vec<u64>, JobError>>()?,
                init: parse_mem_image(v.get("init"), "init")?,
                expected: parse_mem_image(v.get("expected"), "expected")?,
                run: RunSpec::from_json(&v)?,
                system: SystemSpec::from_json(v.get("system"))?,
            }),
            "program" => Ok(JobRequest::Program {
                name: v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| JobError::InvalidRequest("program job needs a `name`".into()))?
                    .to_owned(),
                n: v.get("n").and_then(JsonValue::as_u64).map(|n| n as usize),
                run: RunSpec::from_json(&v)?,
            }),
            "dse-point" => {
                let usize_field = |key: &str| -> Result<usize, JobError> {
                    v.get(key).and_then(JsonValue::as_u64).map(|n| n as usize).ok_or_else(|| {
                        JobError::InvalidRequest(format!("dse-point job needs a `{key}` integer"))
                    })
                };
                Ok(JobRequest::DsePoint {
                    kernel: v
                        .get("kernel")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| {
                            JobError::InvalidRequest("dse-point job needs a `kernel`".into())
                        })?
                        .to_owned(),
                    n: usize_field("n")?,
                    rows: usize_field("rows")?,
                    cols: usize_field("cols")?,
                    universal: v.get("universal").and_then(JsonValue::as_bool).unwrap_or(false),
                    fifo_depth: usize_field("fifo_depth")?,
                    mem: v
                        .get("mem")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("default")
                        .to_owned(),
                    unroll: usize_field("unroll")?,
                    run: RunSpec::from_json(&v)?,
                })
            }
            other => Err(JobError::InvalidRequest(format!("unknown job kind `{other}`"))),
        }
    }
}

// -------------------------------------------------------- result types

/// A successful job's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// An experiment's rendered table (CSV or human format, exactly the
    /// bytes the in-process `repro` would print).
    Experiment {
        /// The rendered table.
        text: String,
    },
    /// A kernel or IR run's statistics.
    Run {
        /// Kernel or function name.
        name: String,
        /// Baseline run cycles.
        baseline_cycles: u64,
        /// Accelerated run cycles.
        dyser_cycles: u64,
        /// Baseline cycles / accelerated cycles.
        speedup: f64,
        /// The exhaustive `Debug` rendering of the baseline `RunStats` —
        /// the byte-identity surface the equivalence tests compare
        /// (structural equality by construction, like the compile
        /// cache's keys).
        baseline_stats: String,
        /// The accelerated run's `RunStats` rendering.
        dyser_stats: String,
        /// The accelerated run's cycle attribution, `(label, cycles)`
        /// in `CycleBucket::ALL` order.
        buckets: Vec<(String, u64)>,
        /// Chrome-trace artifact of both runs, when the job asked for
        /// one.
        trace_json: Option<String>,
    },
    /// A whole-program run's outcome: cycle counts plus the captured
    /// process output (identical on both legs — the harness enforces
    /// it before the result is built).
    Program {
        /// Program name.
        name: String,
        /// Baseline run cycles.
        baseline_cycles: u64,
        /// Accelerated run cycles.
        dyser_cycles: u64,
        /// Baseline cycles / accelerated cycles.
        speedup: f64,
        /// The program's stdout bytes (ASCII).
        stdout: String,
        /// The program's exit code.
        exit_code: u64,
    },
    /// A design-space point's sweep metrics.
    DsePoint {
        /// Suite kernel name.
        kernel: String,
        /// Baseline (no-DySER) cycles.
        baseline_cycles: u64,
        /// Accelerated cycles.
        cycles: u64,
        /// Accelerated-run energy (nJ), leakage scaled to the point's
        /// grid size.
        energy_nj: f64,
        /// Cycles the core stalled on configuration loads.
        config_cycles: u64,
    },
}

impl JobResult {
    /// Serializes into the result member of a reply envelope.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            JobResult::Experiment { text } => {
                format!("{{\"text\": \"{}\"}}", json_escaped(text))
            }
            JobResult::Run {
                name,
                baseline_cycles,
                dyser_cycles,
                speedup,
                baseline_stats,
                dyser_stats,
                buckets,
                trace_json,
            } => {
                let bucket_fields: Vec<String> = buckets
                    .iter()
                    .map(|(label, cycles)| format!("\"{}\": {cycles}", json_escaped(label)))
                    .collect();
                let mut s = format!(
                    "{{\"name\": \"{}\", \"baseline_cycles\": {baseline_cycles}, \
                     \"dyser_cycles\": {dyser_cycles}, \"speedup\": {speedup:.6}, \
                     \"cycle_buckets\": {{{}}}, \"baseline_stats\": \"{}\", \
                     \"dyser_stats\": \"{}\"",
                    json_escaped(name),
                    bucket_fields.join(", "),
                    json_escaped(baseline_stats),
                    json_escaped(dyser_stats),
                );
                if let Some(t) = trace_json {
                    s.push_str(&format!(", \"trace_json\": \"{}\"", json_escaped(t)));
                }
                s.push('}');
                s
            }
            JobResult::Program { name, baseline_cycles, dyser_cycles, speedup, stdout, exit_code } => {
                format!(
                    "{{\"name\": \"{}\", \"baseline_cycles\": {baseline_cycles}, \
                     \"dyser_cycles\": {dyser_cycles}, \"speedup\": {speedup:.6}, \
                     \"stdout\": \"{}\", \"exit_code\": {exit_code}}}",
                    json_escaped(name),
                    json_escaped(stdout)
                )
            }
            JobResult::DsePoint { kernel, baseline_cycles, cycles, energy_nj, config_cycles } => {
                format!(
                    "{{\"kernel\": \"{}\", \"baseline_cycles\": {baseline_cycles}, \
                     \"cycles\": {cycles}, \"energy_nj\": {energy_nj:.4}, \
                     \"config_cycles\": {config_cycles}}}",
                    json_escaped(kernel)
                )
            }
        }
    }

    fn from_json(v: &JsonValue) -> Result<JobResult, JobError> {
        if let Some(text) = v.get("text").and_then(JsonValue::as_str) {
            return Ok(JobResult::Experiment { text: text.to_owned() });
        }
        if let Some(energy_nj) = v.get("energy_nj").and_then(JsonValue::as_f64) {
            let field = |key: &str| -> Result<u64, JobError> {
                v.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| JobError::Protocol(format!("dse result missing `{key}`")))
            };
            return Ok(JobResult::DsePoint {
                kernel: v
                    .get("kernel")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| JobError::Protocol("dse result missing `kernel`".into()))?
                    .to_owned(),
                baseline_cycles: field("baseline_cycles")?,
                cycles: field("cycles")?,
                energy_nj,
                config_cycles: field("config_cycles")?,
            });
        }
        if let Some(exit_code) = v.get("exit_code").and_then(JsonValue::as_u64) {
            let field_str = |key: &str| -> Result<String, JobError> {
                v.get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| JobError::Protocol(format!("program result missing `{key}`")))
            };
            let field_u64 = |key: &str| -> Result<u64, JobError> {
                v.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| JobError::Protocol(format!("program result missing `{key}`")))
            };
            return Ok(JobResult::Program {
                name: field_str("name")?,
                baseline_cycles: field_u64("baseline_cycles")?,
                dyser_cycles: field_u64("dyser_cycles")?,
                speedup: v
                    .get("speedup")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| JobError::Protocol("program result missing `speedup`".into()))?,
                stdout: field_str("stdout")?,
                exit_code,
            });
        }
        let field_str = |key: &str| -> Result<String, JobError> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| JobError::Protocol(format!("result missing `{key}`")))
        };
        let field_u64 = |key: &str| -> Result<u64, JobError> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| JobError::Protocol(format!("result missing `{key}`")))
        };
        let buckets = match v.get("cycle_buckets") {
            Some(JsonValue::Object(members)) => members
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|c| (k.clone(), c))
                        .ok_or_else(|| JobError::Protocol("bucket cycles must be u64".into()))
                })
                .collect::<Result<Vec<_>, JobError>>()?,
            _ => Vec::new(),
        };
        Ok(JobResult::Run {
            name: field_str("name")?,
            baseline_cycles: field_u64("baseline_cycles")?,
            dyser_cycles: field_u64("dyser_cycles")?,
            speedup: v
                .get("speedup")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| JobError::Protocol("result missing `speedup`".into()))?,
            baseline_stats: field_str("baseline_stats")?,
            dyser_stats: field_str("dyser_stats")?,
            buckets,
            trace_json: v.get("trace_json").and_then(JsonValue::as_str).map(str::to_owned),
        })
    }
}

/// Wraps a job outcome as the reply envelope the daemon writes.
#[must_use]
pub fn envelope_json(outcome: &Result<JobResult, JobError>) -> String {
    match outcome {
        Ok(result) => format!("{{\"ok\": true, \"result\": {}}}\n", result.to_json()),
        Err(e) => format!("{{\"ok\": false, \"error\": {}}}\n", e.to_json()),
    }
}

/// Parses a reply envelope back into the job outcome.
///
/// # Errors
///
/// [`JobError::Protocol`] when the envelope itself is malformed; the
/// server's own typed error when the envelope carries one.
pub fn parse_envelope(body: &str) -> Result<JobResult, JobError> {
    let v = parse_json(body).map_err(JobError::Protocol)?;
    match v.get("ok").and_then(JsonValue::as_bool) {
        Some(true) => JobResult::from_json(
            v.get("result").ok_or_else(|| JobError::Protocol("missing `result`".into()))?,
        ),
        Some(false) => Err(v
            .get("error")
            .map(JobError::from_json)
            .unwrap_or_else(|| JobError::Protocol("missing `error`".into()))),
        None => Err(JobError::Protocol("reply envelope missing `ok`".into())),
    }
}

// ---------------------------------------------------------------- HTTP

/// A parsed HTTP request: method, path, body.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request path (`/job`, `/health`).
    pub path: String,
    /// Decoded body (empty for bodiless requests).
    pub body: String,
}

/// Reads one HTTP/1.1 request off `stream` (headers + `Content-Length`
/// body).
///
/// # Errors
///
/// [`JobError::Protocol`] on malformed framing, [`JobError::Io`] on
/// socket failures.
pub fn read_http_request(stream: &mut TcpStream) -> Result<HttpRequest, JobError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| JobError::Protocol("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| JobError::Protocol("request line missing a path".into()))?
        .to_owned();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| JobError::Protocol("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(JobError::Protocol(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| JobError::Protocol("body is not UTF-8".into()))?;
    Ok(HttpRequest { method, path, body })
}

/// Largest request/response body accepted, a backstop against a rogue
/// peer claiming a multi-gigabyte `Content-Length`.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Writes one HTTP/1.1 response with a JSON body and closes the
/// write side.
///
/// # Errors
///
/// [`JobError::Io`] on socket failures.
pub fn write_http_response(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), JobError> {
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Extracts `host:port` from a service URL (`http://host:port` or bare
/// `host:port`).
fn host_of(url: &str) -> &str {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    rest.split('/').next().unwrap_or(rest).trim_end_matches('/')
}

/// One blocking HTTP exchange: connect, send, read the full reply.
///
/// # Errors
///
/// [`JobError::Io`] on connection failures, [`JobError::Protocol`] on
/// malformed replies.
pub fn http_exchange(url: &str, method: &str, path: &str, body: &str) -> Result<String, JobError> {
    let host = host_of(url);
    let mut stream = TcpStream::connect(host)
        .map_err(|e| JobError::Io(format!("connect {host}: {e}")))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if !status_line.starts_with("HTTP/1.") {
        return Err(JobError::Protocol(format!("not an HTTP reply: {status_line:?}")));
    }
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) if n <= MAX_BODY_BYTES => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        Some(n) => {
            return Err(JobError::Protocol(format!("reply body of {n} bytes is too large")));
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    String::from_utf8(body).map_err(|_| JobError::Protocol("reply is not UTF-8".into()))
}

/// Submits one job to a running `dyser-serve` and returns its outcome.
///
/// # Errors
///
/// Transport failures ([`JobError::Io`]/[`JobError::Protocol`]) or the
/// server's own typed job error.
pub fn submit(url: &str, request: &JobRequest) -> Result<JobResult, JobError> {
    let reply = http_exchange(url, "POST", "/job", &request.to_json())?;
    parse_envelope(&reply)
}

/// Fetches the daemon's health document (a JSON object).
///
/// # Errors
///
/// Transport failures, or [`JobError::Protocol`] if the reply is not
/// JSON.
pub fn health(url: &str) -> Result<String, JobError> {
    let reply = http_exchange(url, "GET", "/health", "")?;
    parse_json(&reply).map_err(JobError::Protocol)?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let jobs = vec![
            JobRequest::Experiment {
                id: "e2".into(),
                csv: true,
                scale: 0.25,
                backend: Some(Backend::Compiled),
            },
            JobRequest::Kernel {
                name: "saxpy".into(),
                n: Some(128),
                run: RunSpec {
                    backend: Some(Backend::Interpreted),
                    stepped: true,
                    max_cycles: Some(123_456),
                    trace: true,
                },
                system: SystemSpec {
                    rows: Some(4),
                    cols: Some(4),
                    fifo_depth: Some(2),
                    has_fabric: Some(true),
                },
            },
            JobRequest::Ir {
                text: "func @f() {\n}\n".into(),
                function: Some("f".into()),
                args: vec![0x20_0000, f64::to_bits(1.5)],
                init: vec![(0x20_0000, vec![1, u64::MAX])],
                expected: vec![],
                run: RunSpec::default(),
                system: SystemSpec::default(),
            },
            JobRequest::DsePoint {
                kernel: "poly6".into(),
                n: 64,
                rows: 2,
                cols: 8,
                universal: true,
                fifo_depth: 4,
                mem: "tiny".into(),
                unroll: 2,
                run: RunSpec { backend: Some(Backend::Compiled), ..RunSpec::default() },
            },
            JobRequest::Program {
                name: "p1".into(),
                n: Some(64),
                run: RunSpec { backend: Some(Backend::Compiled), ..RunSpec::default() },
            },
            JobRequest::Program { name: "p3".into(), n: None, run: RunSpec::default() },
        ];
        for job in jobs {
            let json = job.to_json();
            dyser_trace::validate_json(&json).expect("request renders valid JSON");
            let back = JobRequest::parse(&json).expect("request parses back");
            assert_eq!(back, job, "{json}");
        }
    }

    #[test]
    fn results_and_errors_round_trip_through_envelopes() {
        let ok: Result<JobResult, JobError> = Ok(JobResult::Run {
            name: "saxpy".into(),
            baseline_cycles: 1000,
            dyser_cycles: 250,
            speedup: 4.0,
            baseline_stats: "RunStats { cycles: 1000, .. }".into(),
            dyser_stats: "RunStats { cycles: 250, .. }".into(),
            buckets: vec![("core-compute".into(), 200), ("mem-miss".into(), 50)],
            trace_json: Some("{\"traceEvents\": []}".into()),
        });
        let body = envelope_json(&ok);
        dyser_trace::validate_json(&body).expect("envelope is valid JSON");
        assert_eq!(parse_envelope(&body), ok.map_err(|_| unreachable!()));

        let program: Result<JobResult, JobError> = Ok(JobResult::Program {
            name: "p2".into(),
            baseline_cycles: 9000,
            dyser_cycles: 4500,
            speedup: 2.0,
            stdout: "17\n12345\n".into(),
            exit_code: 0,
        });
        let body = envelope_json(&program);
        dyser_trace::validate_json(&body).expect("program envelope is valid JSON");
        assert_eq!(parse_envelope(&body), program.map_err(|_| unreachable!()));

        for err in [
            JobError::InvalidRequest("bad".into()),
            JobError::Timeout { cycles: 99 },
            JobError::InvalidConfig("zero-depth FIFO".into()),
            JobError::Overloaded("queue full".into()),
        ] {
            let body = envelope_json(&Err(err.clone()));
            dyser_trace::validate_json(&body).expect("error envelope is valid JSON");
            match parse_envelope(&body) {
                Err(back) => {
                    assert_eq!(back.kind(), err.kind());
                    if let (JobError::Timeout { cycles: a }, JobError::Timeout { cycles: b }) =
                        (&back, &err)
                    {
                        assert_eq!(a, b);
                    }
                }
                Ok(r) => panic!("error envelope parsed as success: {r:?}"),
            }
        }
    }

    #[test]
    fn dse_point_result_round_trips() {
        let ok: Result<JobResult, JobError> = Ok(JobResult::DsePoint {
            kernel: "saxpy".into(),
            baseline_cycles: 4000,
            cycles: 900,
            energy_nj: 1234.5,
            config_cycles: 37,
        });
        let body = envelope_json(&ok);
        dyser_trace::validate_json(&body).expect("envelope is valid JSON");
        assert_eq!(parse_envelope(&body), ok.map_err(|_| unreachable!()));
    }

    #[test]
    fn experiment_text_round_trips_exactly() {
        let text = "a,b\n1,\"x,y\"\n# note with \"quotes\" and\nnewlines\n";
        let ok: Result<JobResult, JobError> = Ok(JobResult::Experiment { text: text.into() });
        let body = envelope_json(&ok);
        match parse_envelope(&body) {
            Ok(JobResult::Experiment { text: back }) => assert_eq!(back, text),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn harness_errors_map_to_the_wire_taxonomy() {
        use dyser_fabric::FabricConfigError;
        let timeout = HarnessError::Run {
            which: "dyser",
            source: SysError::Timeout { cycles: 500 },
        };
        assert_eq!(JobError::from_harness(&timeout), JobError::Timeout { cycles: 500 });
        let invalid = HarnessError::Run {
            which: "baseline",
            source: SysError::InvalidConfig(FabricConfigError::ZeroFifoDepth),
        };
        assert_eq!(JobError::from_harness(&invalid).kind(), "invalid-config");
    }

    #[test]
    fn url_host_extraction() {
        assert_eq!(host_of("http://127.0.0.1:7878"), "127.0.0.1:7878");
        assert_eq!(host_of("http://localhost:7878/"), "localhost:7878");
        assert_eq!(host_of("127.0.0.1:7878"), "127.0.0.1:7878");
    }
}
