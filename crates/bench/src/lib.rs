//! # dyser-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! reconstructed ISPASS 2015 evaluation (experiments E1–E10; the index
//! lives in `DESIGN.md`, the measured results in `EXPERIMENTS.md`).
//!
//! Entry points:
//!
//! * `cargo run -p dyser-bench --release --bin repro -- <e1..e10|all>`
//!   prints each experiment's rows (`--csv` for machine-readable output,
//!   `--time` to record wall-clock and throughput to `BENCH_repro.json`),
//! * `cargo bench -p dyser-bench` runs the same experiments (at reduced
//!   sizes) under a dependency-free timing loop.


#![warn(missing_docs)]
pub mod dse;
pub mod experiments;
pub mod fuzzcli;
pub mod serve;
pub mod table;
pub mod timing;

pub use dse::{dse_path, run_dse, run_dse_batch, DseOutcome, DsePlan};
pub use experiments::{
    clear_result_memo, result_memo_stats, run_experiment, stats_attribution, Scale, EXPERIMENT_IDS,
};
pub use fuzzcli::{run_fuzz_cli, time_fuzz};
pub use table::{ExpTable, TableError};
pub use timing::{load_reference, time_batch, time_experiments, timing_json, Reference, Timing};
