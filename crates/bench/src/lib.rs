//! # dyser-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! reconstructed ISPASS 2015 evaluation (experiments E1–E10; the index
//! lives in `DESIGN.md`, the measured results in `EXPERIMENTS.md`).
//!
//! Two entry points:
//!
//! * `cargo run -p dyser-bench --release --bin repro -- <e1..e10|all>`
//!   prints each experiment's rows,
//! * `cargo bench -p dyser-bench` runs the same experiments (at reduced
//!   sizes) under Criterion, timing the simulation stack itself.


#![warn(missing_docs)]
pub mod experiments;
pub mod table;
pub mod timing;

pub use experiments::{run_experiment, EXPERIMENT_IDS};
pub use table::ExpTable;
pub use timing::{time_experiments, timing_json, Timing};
