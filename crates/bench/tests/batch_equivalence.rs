//! Bit-identity of the batched lockstep engine: for every workload and
//! every batch size — including ragged mixed-kernel batches — the
//! results coming out of `run_kernel_batch`/`run_batch` must be
//! byte-identical to serial runs, with `System::run_stepped` as the
//! ground-truth reference: `RunStats`, cycle-bucket vectors, memory
//! images, and exact `Timeout` cycles when a lockstep horizon overshoots
//! an individual instance's budget.

use dyser_bench::experiments::SEED;
use dyser_core::{
    run_batch, run_kernel, run_kernel_batch, Backend, BatchEngine, BatchItem, KernelJob,
    KernelResult, RunConfig, RunStats, SysError, System, SystemConfig,
};
use dyser_fabric::FuKind;
use dyser_isa::{regs, AluOp, Assembler, Instr, LoadKind, Op2, StoreKind};
use dyser_workloads::suite;

/// The three execution paths under test.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Stepped,
    Fast,
    Compiled,
}

impl Mode {
    fn apply(self, config: &mut RunConfig) {
        config.stepped = self == Mode::Stepped;
        config.backend =
            if self == Mode::Compiled { Backend::Compiled } else { Backend::Interpreted };
    }
}

/// Every suite kernel at a small size — the jobs behind the E2–E10
/// tables — plus the ablation grid's design-choice variants (unroll
/// factor, store-lag depth, FIFO depth, memory model, FU kinds), which
/// shift which stall causes dominate and how often the skip horizon
/// engages.
fn equivalence_jobs(mode: Mode) -> Vec<KernelJob> {
    let mut jobs: Vec<KernelJob> = suite()
        .iter()
        .map(|k| {
            let n = (k.default_n / 16).max(8) / 4 * 4;
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            mode.apply(&mut config);
            (k.case(n, SEED), config)
        })
        .collect();
    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn(&mut RunConfig)); 8] = [
        ("poly6", |c| c.system.fifo_depth = 2),
        ("poly6", |c| c.compiler.unroll_factor = 8),
        ("poly6", |c| c.compiler.codegen.lag_depth = 1),
        ("saxpy", |c| c.system.mem = dyser_mem::MemConfig::perfect()),
        ("saxpy", |c| c.compiler.codegen.lag_stores = false),
        ("saxpy", |c| c.compiler.schedule.refinement_rounds = 0),
        ("fir4", |c| {
            let g = c.system.geometry;
            let kinds = vec![FuKind::Universal; g.fu_count()];
            c.system.kinds = Some(kinds.clone());
            c.compiler.kinds = Some(kinds);
        }),
        ("stencil3", |c| c.compiler.unroll_factor = 1),
    ];
    for (name, tweak) in variants {
        let k = suite().into_iter().find(|k| k.name == name).expect("kernel in suite");
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        mode.apply(&mut config);
        tweak(&mut config);
        jobs.push((k.case(32, SEED), config));
    }
    jobs
}

/// Asserts every observable field of two results matches bit-for-bit.
/// (The memory image is covered too: `run_kernel` verifies each run's
/// output region against the reference values before returning, so a
/// returned result implies the batched run's memory matches the serial
/// run's.)
fn assert_identical(name: &str, label: &str, got: &KernelResult, want: &KernelResult) {
    for (which, g, w) in
        [("baseline", &got.baseline, &want.baseline), ("dyser", &got.dyser, &want.dyser)]
    {
        assert_eq!(g, w, "{name} ({which}): RunStats diverged between {label} and stepped runs");
        assert_eq!(
            g.cycle_account(),
            w.cycle_account(),
            "{name} ({which}): cycle buckets diverged ({label})"
        );
    }
    assert_eq!(
        format!("{got:?}"),
        format!("{want:?}"),
        "{name}: results diverged outside the stats ({label})"
    );
}

#[test]
fn batched_kernels_bit_identical_at_every_batch_size() {
    // Ground truth: every job serially through the per-cycle reference.
    let stepped_serial: Vec<KernelResult> = equivalence_jobs(Mode::Stepped)
        .iter()
        .map(|(case, config)| {
            run_kernel(case, config).unwrap_or_else(|e| panic!("stepped {}: {e}", case.name))
        })
        .collect();

    for (mode, label) in [(Mode::Fast, "batched fast-forwarded"), (Mode::Compiled, "batched compiled")]
    {
        let jobs = equivalence_jobs(mode);
        // Fixed batch sizes: the lockstep slices land on different round
        // boundaries at each size, and size 1 degenerates to a solo
        // lockstep — all must be unobservable.
        for size in [1usize, 3, 16] {
            let mut results = Vec::with_capacity(jobs.len());
            for chunk in jobs.chunks(size) {
                results.extend(run_kernel_batch(chunk, 1));
            }
            for ((case, _), (got, want)) in
                jobs.iter().zip(results.iter().zip(&stepped_serial))
            {
                let got = got
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{label} (size {size}) {}: {e}", case.name));
                assert_identical(&case.name, label, got, want);
            }
        }
        // Ragged mixed-kernel batches: every job in one submission, so
        // batches mix kernels with very different run lengths and the
        // lockstep retires members at staggered rounds.
        for (( case, _), (got, want)) in
            jobs.iter().zip(run_kernel_batch(&jobs, 4).iter().zip(&stepped_serial))
        {
            let got =
                got.as_ref().unwrap_or_else(|e| panic!("{label} (ragged) {}: {e}", case.name));
            assert_identical(&case.name, label, got, want);
        }
    }

    // The stepped engine must survive batching too (it is the oracle the
    // fuzz campaign batches).
    let jobs = equivalence_jobs(Mode::Stepped);
    for ((case, _), (got, want)) in
        jobs.iter().zip(run_kernel_batch(&jobs, 4).iter().zip(&stepped_serial))
    {
        let got =
            got.as_ref().unwrap_or_else(|e| panic!("batched stepped {}: {e}", case.name));
        assert_identical(&case.name, "batched stepped", got, want);
    }
}

/// An endless loop that keeps long-latency stalls in flight —
/// cache-missing loads, an 8-cycle multiply, a 40-cycle divide — and
/// stores every quotient, so most budgets cut the run mid-stall and the
/// memory image depends on exactly how many iterations completed.
fn stally_spin_with_stores() -> Vec<u32> {
    let mut asm = Assembler::new();
    asm.push(Instr::Sethi { rd: regs::O0, imm22: 0x800 }); // %o0 = 0x20_0000
    asm.push(Instr::Sethi { rd: regs::O4, imm22: 0xc00 }); // %o4 = 0x30_0000
    asm.label("spin");
    asm.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::O1, rs1: regs::O0, op2: Op2::Imm(0) });
    asm.push(Instr::alu(AluOp::Mulx, regs::O2, regs::O1, Op2::Imm(3)));
    asm.push(Instr::alu(AluOp::Sdivx, regs::O3, regs::O2, Op2::Imm(7)));
    asm.push(Instr::Store { kind: StoreKind::Stx, rs: regs::O3, rs1: regs::O4, op2: Op2::Imm(0) });
    asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(64)));
    asm.push(Instr::alu(AluOp::Add, regs::O4, regs::O4, Op2::Imm(8)));
    asm.branch(dyser_isa::ICond::Always, "spin");
    asm.push(Instr::Nop);
    asm.assemble().expect("spin assembles")
}

/// The store region `stally_spin_with_stores` writes: enough words to
/// cover every iteration any budget in the sweep can complete.
const STORE_BASE: u64 = 0x30_0000;
const STORE_WORDS: usize = 64;

#[test]
fn batched_timeouts_mid_stall_match_serial_exactly() {
    let words = stally_spin_with_stores();
    // Mirror the serial timeout sweep in `equivalence.rs`: budgets
    // crossing a couple of loop iterations, fabric present and absent.
    // Batched, the whole sweep goes in as ONE ragged batch, so lockstep
    // horizons constantly overshoot the shorter members' budgets — the
    // scheduler must clamp each instance's slice to its own remaining
    // cycles and report exactly `max_cycles` on every timeout.
    for has_fabric in [true, false] {
        let budgets: Vec<u64> = (40..=160).step_by(7).collect();
        let reference: Vec<(u64, RunStats, Vec<u64>)> = budgets
            .iter()
            .map(|&max_cycles| {
                let mut sys = System::new(SystemConfig { has_fabric, ..SystemConfig::default() });
                sys.load_raw(0x10000, &words);
                let err = sys.run_stepped(max_cycles).expect_err("spin loop never halts");
                let SysError::Timeout { cycles } = err else {
                    panic!("expected timeout, got {err}");
                };
                assert_eq!(cycles, max_cycles, "stepped timeout off the budget");
                let image = sys.memory().read_u64_slice(STORE_BASE, STORE_WORDS);
                (cycles, sys.stats(), image)
            })
            .collect();

        for (engine, label) in [
            (BatchEngine::Interpreted, "interpreted"),
            (BatchEngine::Stepped, "stepped"),
            (BatchEngine::Compiled, "compiled"),
        ] {
            let items: Vec<BatchItem> = budgets
                .iter()
                .map(|&max_cycles| {
                    let mut sys =
                        System::new(SystemConfig { has_fabric, ..SystemConfig::default() });
                    sys.load_raw(0x10000, &words);
                    BatchItem::new(sys, max_cycles, engine)
                })
                .collect();
            let report = run_batch(items);
            assert_eq!(report.outcomes.len(), budgets.len());
            for ((outcome, &budget), (want_cycles, want_stats, want_image)) in
                report.outcomes.iter().zip(&budgets).zip(&reference)
            {
                let err = outcome
                    .result
                    .as_ref()
                    .expect_err("spin loop never halts in a batch either");
                let SysError::Timeout { cycles } = err else {
                    panic!("expected timeout, got {err}");
                };
                assert_eq!(
                    *cycles, budget,
                    "{label} (fabric={has_fabric}): lockstep overshot budget {budget}"
                );
                assert_eq!(*cycles, *want_cycles);
                assert_eq!(
                    outcome.system.stats(),
                    *want_stats,
                    "{label} (fabric={has_fabric}, budget {budget}): stats diverged at timeout"
                );
                assert_eq!(
                    outcome.system.memory().read_u64_slice(STORE_BASE, STORE_WORDS),
                    *want_image,
                    "{label} (fabric={has_fabric}, budget {budget}): memory image diverged"
                );
            }
        }
    }
}
