//! Syscall-ABI conformance suite.
//!
//! Table-driven machine-level tests of the FASE-style proxy kernel:
//! every syscall in the ABI (`exit`, `read`, `write`, `brk`, `gettime`)
//! is exercised through real trap instructions on full systems, on every
//! engine — `run`, `run_stepped`, `run_compiled`, and all three batch
//! engines — and each case asserts that stats, captured streams, exit
//! codes, and scratch memory are bit-identical everywhere. Error paths
//! (bad fds, brk shrink, reads past EOF, unknown trap numbers) are part
//! of the table, and the process-startup image (argv/envp layout) is
//! checked byte by byte, both from the host side and as the guest
//! program observes it.

use dyser_core::{
    run_batch, BatchEngine, BatchItem, SysError, System, SystemConfig, HEAP_BASE, STACK_BASE,
};
use dyser_isa::{regs, AluOp, Assembler, Instr, LoadKind, Op2, RCond, StoreKind};
use dyser_sparc::syscall::{
    service_cost, SYS_BRK, SYS_ERR, SYS_EXIT, SYS_GETTIME, SYS_READ, SYS_WRITE,
};

/// Where every case stores its observable results (`Stx` cells).
const OUT: i16 = 0xE00;
/// Data buffer used by read/write cases.
const BUF: i16 = 0xF00;
/// The scratch window compared byte-for-byte across engines.
const SCRATCH_BASE: u64 = 0xE00;
const SCRATCH_LEN: u64 = 0x200;

const MAX: u64 = 200_000;

/// Emits `store %o0 -> [OUT + 8*slot]`.
fn save(asm: &mut Assembler, slot: i16) {
    asm.push(Instr::mov_imm(regs::L7, OUT + 8 * slot));
    asm.push(Instr::Store { kind: StoreKind::Stx, rs: regs::O0, rs1: regs::L7, op2: Op2::Imm(0) });
}

fn exit0(asm: &mut Assembler) {
    asm.push(Instr::mov_imm(regs::O0, 0));
    asm.push(Instr::Trap { code: SYS_EXIT });
    asm.push(Instr::Halt);
}

fn assemble(build: impl Fn(&mut Assembler)) -> Vec<u32> {
    let mut asm = Assembler::new();
    build(&mut asm);
    asm.assemble().expect("conformance program assembles")
}

/// Builds a fresh system with `words` loaded and the process set up.
fn fresh(words: &[u32], stdin: &[u8]) -> System {
    let mut sys = System::new(SystemConfig::default());
    sys.load_raw(0x10000, words);
    sys.setup_process(&["prog", "arg1"], &["K=V"], stdin);
    sys
}

/// Runs the same program on every engine; asserts every observable —
/// result (stats or typed error), stdout, stderr, exit code, program
/// break, and the scratch memory window — is identical; returns the
/// reference run's system and result.
fn conformant(
    name: &str,
    words: &[u32],
    stdin: &[u8],
) -> (System, Result<dyser_core::RunStats, SysError>) {
    let mut runs: Vec<(&'static str, System, Result<dyser_core::RunStats, SysError>)> = Vec::new();
    let mut s = fresh(words, stdin);
    let r = s.run(MAX);
    runs.push(("run", s, r));
    let mut s = fresh(words, stdin);
    let r = s.run_stepped(MAX);
    runs.push(("stepped", s, r));
    let mut s = fresh(words, stdin);
    let r = s.run_compiled(MAX);
    runs.push(("compiled", s, r));
    for (label, engine) in [
        ("batch-interpreted", BatchEngine::Interpreted),
        ("batch-stepped", BatchEngine::Stepped),
        ("batch-compiled", BatchEngine::Compiled),
    ] {
        let report = run_batch(vec![BatchItem::new(fresh(words, stdin), MAX, engine)]);
        let outcome = report.outcomes.into_iter().next().expect("one outcome");
        runs.push((label, outcome.system, outcome.result));
    }
    let reference = format!("{:?}", runs[0].2);
    for (label, sys, result) in &runs[1..] {
        assert_eq!(
            format!("{result:?}"),
            reference,
            "{name}: {label} result diverged from `run`"
        );
        assert_eq!(
            sys.kernel().stdout(),
            runs[0].1.kernel().stdout(),
            "{name}: {label} stdout diverged"
        );
        assert_eq!(
            sys.kernel().stderr(),
            runs[0].1.kernel().stderr(),
            "{name}: {label} stderr diverged"
        );
        assert_eq!(
            sys.kernel().exit_code(),
            runs[0].1.kernel().exit_code(),
            "{name}: {label} exit code diverged"
        );
        assert_eq!(sys.kernel().brk(), runs[0].1.kernel().brk(), "{name}: {label} brk diverged");
        assert_eq!(
            sys.memory().read_bytes(SCRATCH_BASE, SCRATCH_LEN as usize),
            runs[0].1.memory().read_bytes(SCRATCH_BASE, SCRATCH_LEN as usize),
            "{name}: {label} scratch memory diverged"
        );
    }
    let (_, sys, result) = runs.swap_remove(0);
    (sys, result)
}

/// One syscall-conformance case: a program, its stdin, and the checks.
struct Case {
    name: &'static str,
    stdin: &'static [u8],
    build: fn(&mut Assembler),
    check: fn(&System),
}

fn out_cell(sys: &System, slot: u64) -> u64 {
    sys.memory().read_u64(SCRATCH_BASE + 8 * slot)
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "write_stdout",
            stdin: b"",
            build: |asm| {
                asm.push(Instr::mov_imm(regs::L0, BUF));
                asm.push(Instr::mov_imm(regs::L1, i16::from(b'h')));
                asm.push(Instr::Store {
                    kind: StoreKind::Stb,
                    rs: regs::L1,
                    rs1: regs::L0,
                    op2: Op2::Imm(0),
                });
                asm.push(Instr::mov_imm(regs::L1, i16::from(b'i')));
                asm.push(Instr::Store {
                    kind: StoreKind::Stb,
                    rs: regs::L1,
                    rs1: regs::L0,
                    op2: Op2::Imm(1),
                });
                asm.push(Instr::mov_imm(regs::O0, 1));
                asm.push(Instr::mov_imm(regs::O1, BUF));
                asm.push(Instr::mov_imm(regs::O2, 2));
                asm.push(Instr::Trap { code: SYS_WRITE });
                save(asm, 0);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), 2, "write returns the byte count");
                assert_eq!(sys.kernel().stdout(), b"hi");
                assert_eq!(sys.kernel().stderr(), b"");
            },
        },
        Case {
            name: "write_stderr",
            stdin: b"",
            build: |asm| {
                asm.push(Instr::mov_imm(regs::L0, BUF));
                asm.push(Instr::mov_imm(regs::L1, i16::from(b'!')));
                asm.push(Instr::Store {
                    kind: StoreKind::Stb,
                    rs: regs::L1,
                    rs1: regs::L0,
                    op2: Op2::Imm(0),
                });
                asm.push(Instr::mov_imm(regs::O0, 2));
                asm.push(Instr::mov_imm(regs::O1, BUF));
                asm.push(Instr::mov_imm(regs::O2, 1));
                asm.push(Instr::Trap { code: SYS_WRITE });
                save(asm, 0);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), 1);
                assert_eq!(sys.kernel().stdout(), b"");
                assert_eq!(sys.kernel().stderr(), b"!");
            },
        },
        Case {
            name: "write_bad_fd",
            stdin: b"",
            build: |asm| {
                asm.push(Instr::mov_imm(regs::O0, 7));
                asm.push(Instr::mov_imm(regs::O1, BUF));
                asm.push(Instr::mov_imm(regs::O2, 3));
                asm.push(Instr::Trap { code: SYS_WRITE });
                save(asm, 0);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), SYS_ERR, "bad fd returns -1");
                assert_eq!(sys.kernel().stdout(), b"");
                assert_eq!(sys.kernel().stderr(), b"");
            },
        },
        Case {
            name: "read_then_eof",
            stdin: b"abcde",
            build: |asm| {
                // First read: 3 bytes land in BUF.
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::mov_imm(regs::O1, BUF));
                asm.push(Instr::mov_imm(regs::O2, 3));
                asm.push(Instr::Trap { code: SYS_READ });
                save(asm, 0);
                // Second read asks for 99: only 2 remain.
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::mov_imm(regs::O1, BUF + 8));
                asm.push(Instr::mov_imm(regs::O2, 99));
                asm.push(Instr::Trap { code: SYS_READ });
                save(asm, 1);
                // Third read: EOF reads 0 bytes.
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::mov_imm(regs::O1, BUF + 16));
                asm.push(Instr::mov_imm(regs::O2, 1));
                asm.push(Instr::Trap { code: SYS_READ });
                save(asm, 2);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), 3);
                assert_eq!(out_cell(sys, 1), 2, "short read at end of stdin");
                assert_eq!(out_cell(sys, 2), 0, "EOF reads 0");
                assert_eq!(sys.memory().read_bytes(BUF as u64, 3), b"abc");
                assert_eq!(sys.memory().read_bytes(BUF as u64 + 8, 2), b"de");
            },
        },
        Case {
            name: "read_bad_fd",
            stdin: b"abc",
            build: |asm| {
                asm.push(Instr::mov_imm(regs::O0, 3));
                asm.push(Instr::mov_imm(regs::O1, BUF));
                asm.push(Instr::mov_imm(regs::O2, 3));
                asm.push(Instr::Trap { code: SYS_READ });
                save(asm, 0);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), SYS_ERR, "only fd 0 is readable");
            },
        },
        Case {
            name: "brk_query_grow_shrink",
            stdin: b"",
            build: |asm| {
                // Query: brk(0) returns the heap base.
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::Trap { code: SYS_BRK });
                save(asm, 0);
                asm.push(Instr::mov(regs::L5, regs::O0));
                // Grow by 0x800.
                asm.push(Instr::alu(AluOp::Add, regs::O0, regs::L5, Op2::Imm(0x800)));
                asm.push(Instr::Trap { code: SYS_BRK });
                save(asm, 1);
                // Shrink attempt back to base+0x100: refused, break stays.
                asm.push(Instr::alu(AluOp::Add, regs::O0, regs::L5, Op2::Imm(0x100)));
                asm.push(Instr::Trap { code: SYS_BRK });
                save(asm, 2);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), HEAP_BASE, "brk(0) queries the heap base");
                assert_eq!(out_cell(sys, 1), HEAP_BASE + 0x800, "brk grows");
                assert_eq!(out_cell(sys, 2), HEAP_BASE + 0x800, "brk never shrinks");
                assert_eq!(sys.kernel().brk(), HEAP_BASE + 0x800);
            },
        },
        Case {
            name: "gettime_virtual_clock",
            stdin: b"",
            build: |asm| {
                asm.push(Instr::Trap { code: SYS_GETTIME });
                save(asm, 0);
                // Spin a little, then read the clock again.
                asm.push(Instr::mov_imm(regs::L0, 32));
                asm.label("spin");
                asm.push(Instr::alu(AluOp::Sub, regs::L0, regs::L0, Op2::Imm(1)));
                asm.branch_reg(RCond::NonZero, regs::L0, "spin");
                asm.push(Instr::Nop);
                asm.push(Instr::Trap { code: SYS_GETTIME });
                save(asm, 1);
                exit0(asm);
            },
            check: |sys| {
                let (t0, t1) = (out_cell(sys, 0), out_cell(sys, 1));
                assert!(t0 > 0, "the virtual clock has advanced by the first trap");
                assert!(t1 > t0, "the virtual clock is monotonic: {t0} -> {t1}");
            },
        },
        Case {
            name: "argv_envp_as_the_guest_sees_them",
            stdin: b"",
            build: |asm| {
                // The loader seeded %o0=argc, %o1=argv, %o2=envp.
                save(asm, 0); // argc
                // argv[1] string bytes, loaded through the pointer array.
                asm.push(Instr::Load {
                    kind: LoadKind::Ldx,
                    rd: regs::L0,
                    rs1: regs::O1,
                    op2: Op2::Imm(8),
                });
                asm.push(Instr::Load {
                    kind: LoadKind::Ldub,
                    rd: regs::L1,
                    rs1: regs::L0,
                    op2: Op2::Imm(0),
                });
                asm.push(Instr::mov(regs::O0, regs::L1));
                save(asm, 1); // argv[1][0]
                // argv terminator.
                asm.push(Instr::Load {
                    kind: LoadKind::Ldx,
                    rd: regs::O0,
                    rs1: regs::O1,
                    op2: Op2::Imm(16),
                });
                save(asm, 2);
                // envp[0] first byte and the envp terminator.
                asm.push(Instr::Load {
                    kind: LoadKind::Ldx,
                    rd: regs::L0,
                    rs1: regs::O2,
                    op2: Op2::Imm(0),
                });
                asm.push(Instr::Load {
                    kind: LoadKind::Ldub,
                    rd: regs::O0,
                    rs1: regs::L0,
                    op2: Op2::Imm(0),
                });
                save(asm, 3);
                asm.push(Instr::Load {
                    kind: LoadKind::Ldx,
                    rd: regs::O0,
                    rs1: regs::O2,
                    op2: Op2::Imm(8),
                });
                save(asm, 4);
                exit0(asm);
            },
            check: |sys| {
                assert_eq!(out_cell(sys, 0), 2, "argc");
                assert_eq!(out_cell(sys, 1), u64::from(b'a'), "argv[1] = \"arg1\"");
                assert_eq!(out_cell(sys, 2), 0, "argv NULL terminator");
                assert_eq!(out_cell(sys, 3), u64::from(b'K'), "envp[0] = \"K=V\"");
                assert_eq!(out_cell(sys, 4), 0, "envp NULL terminator");
            },
        },
    ]
}

#[test]
fn every_syscall_conforms_on_every_engine() {
    for case in cases() {
        let words = assemble(case.build);
        let (sys, result) = conformant(case.name, &words, case.stdin);
        let stats = result.unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert!(stats.cycles > 0);
        assert_eq!(sys.kernel().exit_code(), Some(0), "{}: clean exit", case.name);
        (case.check)(&sys);
    }
}

#[test]
fn exit_code_propagates_through_every_engine() {
    for code in [0u64, 1, 42, 255] {
        let words = assemble(|asm| {
            asm.push(Instr::mov_imm(regs::O0, code as i16));
            asm.push(Instr::Trap { code: SYS_EXIT });
            asm.push(Instr::Halt);
        });
        let (sys, result) = conformant("exit", &words, b"");
        result.unwrap_or_else(|e| panic!("exit({code}): {e}"));
        assert_eq!(sys.kernel().exit_code(), Some(code));
        assert!(sys.cpu().halted(), "exit halts the core");
    }
}

#[test]
fn unknown_trap_numbers_are_typed_errors_never_panics() {
    // Trap numbers are a 12-bit field; 4095 is the largest encodable code.
    for bad in [0u16, 2, 5, 100, 999, 4095] {
        let words = assemble(|asm| {
            asm.push(Instr::Trap { code: bad });
            asm.push(Instr::Halt);
        });
        let (sys, result) = conformant("unknown", &words, b"");
        match result {
            Err(SysError::UnknownSyscall { code }) => assert_eq!(code, bad),
            other => panic!("ta {bad}: expected UnknownSyscall, got {other:?}"),
        }
        assert_eq!(sys.kernel().exit_code(), None);
    }
}

#[test]
fn startup_stack_layout_bytes() {
    // Host-side view of the exact startup image `setup_process` wrote.
    let words = assemble(|asm| {
        asm.push(Instr::Halt);
    });
    let sys = fresh(&words, b"");
    let mem = sys.memory();
    assert_eq!(mem.read_u64(STACK_BASE), 2, "argc cell");
    let argv = STACK_BASE + 8;
    let envp = argv + 8 * 3; // two argv cells + NULL
    let a0 = mem.read_u64(argv);
    let a1 = mem.read_u64(argv + 8);
    assert_eq!(mem.read_u64(argv + 16), 0, "argv NULL");
    let e0 = mem.read_u64(envp);
    assert_eq!(mem.read_u64(envp + 8), 0, "envp NULL");
    assert_eq!(a0, envp + 16, "string pool starts after the envp terminator");
    assert_eq!(mem.read_bytes(a0, 5), b"prog\0");
    assert_eq!(a1, a0 + 5, "strings are packed NUL-to-NUL");
    assert_eq!(mem.read_bytes(a1, 5), b"arg1\0");
    assert_eq!(mem.read_bytes(e0, 4), b"K=V\0");
    // Register seeds.
    assert_eq!(sys.cpu().regs().read(regs::O0), 2);
    assert_eq!(sys.cpu().regs().read(regs::O1), argv);
    assert_eq!(sys.cpu().regs().read(regs::O2), envp);
    assert_eq!(sys.cpu().regs().read(regs::SP), STACK_BASE, "%sp");
}

#[test]
fn service_cost_scales_with_bytes_moved() {
    // The deterministic latency model: base cost plus one cycle per
    // eight bytes. A long write must cost more cycles than a short one
    // by exactly the documented amount.
    assert_eq!(service_cost(0), 40);
    assert_eq!(service_cost(8), 41);
    assert_eq!(service_cost(64), 48);
    let short = assemble(|asm| {
        asm.push(Instr::mov_imm(regs::O0, 1));
        asm.push(Instr::mov_imm(regs::O1, BUF));
        asm.push(Instr::mov_imm(regs::O2, 8));
        asm.push(Instr::Trap { code: SYS_WRITE });
        exit0(asm);
    });
    let long = assemble(|asm| {
        asm.push(Instr::mov_imm(regs::O0, 1));
        asm.push(Instr::mov_imm(regs::O1, BUF));
        asm.push(Instr::mov_imm(regs::O2, 8 + 64));
        asm.push(Instr::Trap { code: SYS_WRITE });
        exit0(asm);
    });
    let (_, short_result) = conformant("short_write", &short, b"");
    let (_, long_result) = conformant("long_write", &long, b"");
    let short_cycles = short_result.expect("short write runs").cycles;
    let long_cycles = long_result.expect("long write runs").cycles;
    assert_eq!(
        long_cycles - short_cycles,
        service_cost(72) - service_cost(8),
        "the extra bytes cost exactly the documented service latency"
    );
}
