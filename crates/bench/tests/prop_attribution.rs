//! Property tests of the cycle-attribution identity: every cycle of every
//! run is attributed to exactly one bucket, the buckets sum to the cycle
//! count, the core's memory-stall bucket agrees with the hierarchy's own
//! latency counters, and the attribution is identical under the serial
//! and parallel runners.

use dyser_bench::experiments::SEED;
use dyser_core::{run_kernel, run_kernels, KernelJob, RunConfig, RunStats};
use dyser_sparc::{CycleAccount, CycleBucket};
use dyser_workloads::suite;

/// Every suite kernel at a small size, under its own compiler options.
fn suite_jobs() -> Vec<KernelJob> {
    suite()
        .iter()
        .map(|k| {
            let n = (k.default_n / 16).max(8) / 4 * 4;
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            (k.case(n, SEED), config)
        })
        .collect()
}

fn check_attribution(name: &str, which: &str, stats: &RunStats) -> CycleAccount {
    let acct = stats.cycle_account();
    assert!(
        acct.balanced(),
        "{name} ({which}): buckets sum to {} but the run took {} cycles",
        acct.sum(),
        acct.total_cycles
    );
    assert_eq!(
        acct.total_cycles, stats.cycles,
        "{name} ({which}): account total diverged from run cycles"
    );
    assert_eq!(
        acct.get(CycleBucket::MemMiss),
        stats.mem_miss_stall_cycles(),
        "{name} ({which}): core-side mem-miss bucket disagrees with the \
         hierarchy's own stall accounting"
    );
    acct
}

#[test]
fn every_cycle_is_attributed_serial_and_parallel() {
    let jobs = suite_jobs();

    let serial: Vec<(CycleAccount, CycleAccount)> = jobs
        .iter()
        .map(|(case, config)| {
            let r = run_kernel(case, config)
                .unwrap_or_else(|e| panic!("serial {}: {e}", case.name));
            (
                check_attribution(&r.name, "baseline", &r.baseline),
                check_attribution(&r.name, "dyser", &r.dyser),
            )
        })
        .collect();

    let parallel = run_kernels(&jobs, 4);
    for ((case, _), (serial_accts, got)) in jobs.iter().zip(serial.iter().zip(&parallel)) {
        let r = got.as_ref().unwrap_or_else(|e| panic!("parallel {}: {e}", case.name));
        let base = check_attribution(&r.name, "baseline (parallel)", &r.baseline);
        let dyser = check_attribution(&r.name, "dyser (parallel)", &r.dyser);
        assert_eq!(
            (base, dyser),
            *serial_accts,
            "{}: attribution diverged between serial and parallel runs",
            case.name
        );
    }
}

#[test]
fn baseline_runs_never_use_dyser_buckets() {
    for (case, config) in suite_jobs().into_iter().take(4) {
        let r = run_kernel(&case, &config).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let acct = r.baseline.cycle_account();
        for bucket in [
            CycleBucket::DyserCompute,
            CycleBucket::ConfigLoad,
            CycleBucket::PortSend,
            CycleBucket::PortRecv,
            CycleBucket::Drain,
        ] {
            assert_eq!(
                acct.get(bucket),
                0,
                "{}: baseline run charged cycles to {}",
                case.name,
                bucket.label()
            );
        }
    }
}
