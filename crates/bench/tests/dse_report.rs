//! Regression tests for the `BENCH_dse.json` report path, mirroring the
//! `BENCH_repro.partial.json` convention `tests/stats_reps.rs` guards on
//! the timing side: a filtered or otherwise modified sweep must never be
//! able to clobber the committed full-sweep surface.

use dyser_bench::dse::{dse_path, DsePlan, FuMix, MemPreset};
use dyser_core::Backend;

#[test]
fn only_the_full_default_plan_rebaselines_bench_dse() {
    assert_eq!(dse_path(&DsePlan::default()), "BENCH_dse.json");

    let filtered: Vec<DsePlan> = vec![
        DsePlan { kernels: vec!["saxpy".into()], ..DsePlan::default() },
        DsePlan { dims: vec![2, 4], ..DsePlan::default() },
        DsePlan { mixes: vec![FuMix::Universal], ..DsePlan::default() },
        DsePlan { fifos: vec![4], ..DsePlan::default() },
        DsePlan { mems: vec![MemPreset::Perfect], ..DsePlan::default() },
        DsePlan { unrolls: vec![1], ..DsePlan::default() },
        DsePlan { n: 64, ..DsePlan::default() },
        DsePlan { prune: false, ..DsePlan::default() },
        DsePlan { backend: Some(Backend::Interpreted), ..DsePlan::default() },
        DsePlan { backend: None, ..DsePlan::default() },
    ];
    for plan in &filtered {
        assert_eq!(
            dse_path(plan),
            "BENCH_dse.partial.json",
            "modified plan must not rebaseline: {plan:?}"
        );
    }
}

#[test]
fn the_committed_full_sweep_is_at_least_a_thousand_points() {
    let plan = DsePlan::default();
    assert!(
        plan.points().len() >= 1000,
        "the committed sweep covers {} points",
        plan.points().len()
    );
    plan.validate().expect("the committed sweep is valid");
}
