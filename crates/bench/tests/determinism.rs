//! The parallel harness must be a pure scheduling change: fanning the
//! suite across worker threads has to produce bit-identical
//! `KernelResult`s — cycles, stats, speedups — to running the same jobs
//! back to back on one thread.

use dyser_bench::experiments::SEED;
use dyser_core::{compile_cached, run_kernel, run_kernels, KernelJob, RunConfig};
use dyser_workloads::suite;

/// Every suite kernel at a small size, under its own compiler options.
fn suite_jobs() -> Vec<KernelJob> {
    suite()
        .iter()
        .map(|k| {
            let n = (k.default_n / 16).max(8) / 4 * 4;
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            (k.case(n, SEED), config)
        })
        .collect()
}

#[test]
fn parallel_suite_is_bit_identical_to_serial() {
    let jobs = suite_jobs();

    let serial: Vec<String> = jobs
        .iter()
        .map(|(case, config)| {
            let r = run_kernel(case, config)
                .unwrap_or_else(|e| panic!("serial {}: {e}", case.name));
            format!("{r:?}")
        })
        .collect();

    for threads in [1, 4] {
        let parallel = run_kernels(&jobs, threads);
        assert_eq!(parallel.len(), jobs.len());
        for ((case, _), (want, got)) in jobs.iter().zip(serial.iter().zip(&parallel)) {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("parallel ({threads} threads) {}: {e}", case.name));
            assert_eq!(
                want,
                &format!("{got:?}"),
                "{} diverged between serial and {threads}-thread runs",
                case.name
            );
        }
    }
}

#[test]
fn more_workers_than_jobs_is_fine() {
    let jobs: Vec<KernelJob> = suite_jobs().into_iter().take(2).collect();
    let results = run_kernels(&jobs, 64);
    assert_eq!(results.len(), 2);
    for (i, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("run verifies");
        assert_eq!(r.name, jobs[i].0.name, "results must come back in job order");
    }
}

#[test]
fn identical_inputs_compile_once_per_process() {
    let k = suite().into_iter().next().expect("non-empty suite");
    let opts = k.compiler_options(RunConfig::default().system.geometry);
    let case = k.case(16, SEED);
    let first = compile_cached(&case.function, &opts).expect("compiles");
    let second = compile_cached(&case.function, &opts).expect("compiles");
    assert!(
        std::sync::Arc::ptr_eq(&first, &second),
        "second compile of an identical (kernel, options) pair must hit the cache"
    );
}
