//! The DSE estimator's two safety contracts:
//!
//! 1. **Accuracy**: on every suite kernel at the default geometry, the
//!    anchored analytic estimate stays within the documented error band
//!    of the simulated cycles (`EST_BAND_LOW..EST_BAND_HIGH`).
//! 2. **Prune safety**: on a small exhaustive grid, analytic pre-pruning
//!    never discards a point that the full (unpruned) simulation places
//!    on the true Pareto front — the `PRUNE_MARGIN` really does cover
//!    the estimator's point-to-point ranking error.

use dyser_bench::dse::{run_dse, DsePlan, FuMix, MemPreset, EST_BAND_HIGH, EST_BAND_LOW};
use dyser_core::{Backend, RunConfig};
use dyser_workloads::suite;

#[test]
fn estimator_within_band_on_every_suite_kernel() {
    let default = RunConfig::default();
    let plan = DsePlan {
        kernels: suite().iter().map(|k| k.name.to_owned()).collect(),
        dims: vec![default.system.geometry.rows()],
        mixes: vec![FuMix::Default],
        fifos: vec![default.system.fifo_depth],
        mems: vec![MemPreset::Default],
        unrolls: vec![1, 4],
        n: 64,
        prune: false,
        backend: Some(Backend::Compiled),
    };
    let outcome = run_dse(&plan).expect("suite-wide sweep");
    assert_eq!(outcome.records.len(), outcome.points_total, "prune disabled");
    for r in &outcome.records {
        let ratio = r.accuracy_ratio();
        assert!(
            (EST_BAND_LOW..=EST_BAND_HIGH).contains(&ratio),
            "{}: est {:.0} vs sim {} (ratio {ratio:.2}) outside [{EST_BAND_LOW}, {EST_BAND_HIGH}]",
            r.point,
            r.est.cycles,
            r.sim.cycles,
        );
    }
}

#[test]
fn pruning_never_discards_a_true_pareto_point() {
    let exhaustive = DsePlan {
        kernels: vec!["saxpy".into(), "poly6".into()],
        dims: vec![2, 4],
        mixes: FuMix::ALL.to_vec(),
        fifos: vec![1, 4],
        mems: MemPreset::ALL.to_vec(),
        unrolls: vec![1, 4],
        n: 64,
        prune: false,
        backend: Some(Backend::Compiled),
    };
    let full = run_dse(&exhaustive).expect("exhaustive sweep");
    assert_eq!(full.records.len(), full.points_total, "exhaustive run simulates everything");

    let pruned_plan = DsePlan { prune: true, ..exhaustive };
    let pruned = run_dse(&pruned_plan).expect("pruned sweep");
    assert!(
        pruned.points_pruned > 0,
        "the grid includes dominated points (tiny-mem unmapped configs); pruning must fire"
    );

    for truth in full.pareto() {
        assert!(
            pruned.records.iter().any(|r| r.point == truth.point),
            "true-Pareto point {} was pruned analytically",
            truth.point
        );
    }
}
