//! Equivalence of the execution backends: `RunStats` — cycles, per-cause
//! stalls, cycle buckets, memory and fabric counters — must be
//! bit-identical between `System::run` (stall fast-forwarding),
//! `System::run_stepped` (the per-cycle reference), and
//! `System::run_compiled` (translated-block thunks) for every workload,
//! including DySER-active ones with port transfers in flight, under both
//! the serial and the parallel harness, and across mid-stall timeouts.

use dyser_bench::experiments::SEED;
use dyser_core::{
    run_kernel, run_kernels, Backend, KernelJob, KernelResult, RunConfig, SysError, System,
    SystemConfig,
};
use dyser_fabric::FuKind;
use dyser_isa::{regs, AluOp, Assembler, Instr, LoadKind, Op2};
use dyser_workloads::suite;

/// The three execution paths under test.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Stepped,
    Fast,
    Compiled,
}

impl Mode {
    fn apply(self, config: &mut RunConfig) {
        config.stepped = self == Mode::Stepped;
        config.backend =
            if self == Mode::Compiled { Backend::Compiled } else { Backend::Interpreted };
    }
}

/// Every suite kernel at a small size — plus ablation-style variants
/// (FIFO depth, perfect memory, universal FUs, no unroll) that shift
/// which stall causes dominate — each under its own compiler options.
fn equivalence_jobs(mode: Mode) -> Vec<KernelJob> {
    let mut jobs: Vec<KernelJob> = suite()
        .iter()
        .map(|k| {
            let n = (k.default_n / 16).max(8) / 4 * 4;
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            mode.apply(&mut config);
            (k.case(n, SEED), config)
        })
        .collect();
    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn(&mut RunConfig)); 4] = [
        ("poly6", |c| c.system.fifo_depth = 2),
        ("saxpy", |c| c.system.mem = dyser_mem::MemConfig::perfect()),
        ("fir4", |c| {
            let g = c.system.geometry;
            let kinds = vec![FuKind::Universal; g.fu_count()];
            c.system.kinds = Some(kinds.clone());
            c.compiler.kinds = Some(kinds);
        }),
        ("stencil3", |c| c.compiler.unroll_factor = 1),
    ];
    for (name, tweak) in variants {
        let k = suite().into_iter().find(|k| k.name == name).expect("kernel in suite");
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        mode.apply(&mut config);
        tweak(&mut config);
        jobs.push((k.case(32, SEED), config));
    }
    jobs
}

/// Asserts every observable field of two results matches bit-for-bit.
fn assert_identical(name: &str, label: &str, got: &KernelResult, want: &KernelResult) {
    for (which, g, w) in
        [("baseline", &got.baseline, &want.baseline), ("dyser", &got.dyser, &want.dyser)]
    {
        assert_eq!(g, w, "{name} ({which}): RunStats diverged between {label} and stepped runs");
        assert_eq!(
            g.cycle_account(),
            w.cycle_account(),
            "{name} ({which}): cycle buckets diverged ({label})"
        );
    }
    assert_eq!(
        format!("{got:?}"),
        format!("{want:?}"),
        "{name}: results diverged outside the stats ({label})"
    );
}

#[test]
fn backends_are_bit_identical_serial_and_parallel() {
    let fast_jobs = equivalence_jobs(Mode::Fast);
    let compiled_jobs = equivalence_jobs(Mode::Compiled);
    let stepped_jobs = equivalence_jobs(Mode::Stepped);

    // Serial: one kernel at a time, all paths back to back. The dyser
    // runs keep port sends/receives in flight while counted stalls are
    // skipped, so this covers DySER-active fabric states, not just
    // scalar code.
    let stepped_serial: Vec<KernelResult> = stepped_jobs
        .iter()
        .map(|(case, config)| {
            run_kernel(case, config).unwrap_or_else(|e| panic!("stepped {}: {e}", case.name))
        })
        .collect();
    for ((case, config), want) in fast_jobs.iter().zip(&stepped_serial) {
        let fast =
            run_kernel(case, config).unwrap_or_else(|e| panic!("fast {}: {e}", case.name));
        assert!(
            fast.dyser.fabric.port_in > 0 || !fast.accelerated_any || !config.system.has_fabric,
            "{}: accelerated run exercised no port traffic",
            case.name
        );
        assert_identical(&case.name, "fast-forwarded", &fast, want);
    }
    for ((case, config), want) in compiled_jobs.iter().zip(&stepped_serial) {
        let compiled =
            run_kernel(case, config).unwrap_or_else(|e| panic!("compiled {}: {e}", case.name));
        assert_identical(&case.name, "compiled", &compiled, want);
    }

    // Parallel: the same jobs fanned across workers must agree with the
    // stepped serial reference too.
    for (jobs, label) in [
        (&fast_jobs, "fast-forwarded"),
        (&compiled_jobs, "compiled"),
        (&stepped_jobs, "stepped"),
    ] {
        for ((case, _), (want, got)) in
            jobs.iter().zip(stepped_serial.iter().zip(&run_kernels(jobs, 4)))
        {
            let got = got.as_ref().unwrap_or_else(|e| panic!("parallel {}: {e}", case.name));
            assert_identical(&case.name, label, got, want);
        }
    }
}

/// An endless loop whose body keeps long-latency stalls in flight:
/// cache-missing loads, an 8-cycle multiply, and a 40-cycle divide, so
/// most cycle budgets cut the run mid-stall.
fn stally_spin() -> Vec<u32> {
    let mut asm = Assembler::new();
    asm.push(Instr::Sethi { rd: regs::O0, imm22: 0x800 }); // %o0 = 0x20_0000
    asm.label("spin");
    asm.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::O1, rs1: regs::O0, op2: Op2::Imm(0) });
    asm.push(Instr::alu(AluOp::Mulx, regs::O2, regs::O1, Op2::Imm(3)));
    asm.push(Instr::alu(AluOp::Sdivx, regs::O3, regs::O2, Op2::Imm(7)));
    asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(64)));
    asm.branch(dyser_isa::ICond::Always, "spin");
    asm.push(Instr::Nop);
    asm.assemble().expect("spin assembles")
}

#[test]
fn timeout_mid_stall_reports_identical_cycles_all_ways() {
    let words = stally_spin();
    // Sweep budgets across a couple of loop iterations so some cut the
    // run mid-stall and some on an issue cycle; a bulk skip must never
    // overshoot the budget on any path. The fabric-free system (E10's
    // pure baseline) takes the same fast paths, so cover both.
    for has_fabric in [true, false] {
        for max_cycles in (40..=160).step_by(7) {
            let run_one = |mode: Mode| -> (u64, dyser_core::RunStats) {
                let mut sys =
                    System::new(SystemConfig { has_fabric, ..SystemConfig::default() });
                sys.load_raw(0x10000, &words);
                let err = match mode {
                    Mode::Stepped => sys.run_stepped(max_cycles),
                    Mode::Fast => sys.run(max_cycles),
                    Mode::Compiled => sys.run_compiled(max_cycles),
                }
                .expect_err("spin loop never halts");
                let SysError::Timeout { cycles } = err else {
                    panic!("expected timeout, got {err}");
                };
                (cycles, sys.stats())
            };
            let (stepped_cycles, stepped_stats) = run_one(Mode::Stepped);
            assert_eq!(stepped_cycles, max_cycles, "stepped timeout off the budget");
            for (mode, label) in [(Mode::Fast, "fast-forwarded"), (Mode::Compiled, "compiled")] {
                let (cycles, stats) = run_one(mode);
                assert_eq!(cycles, max_cycles, "{label} timeout overshot or undershot");
                assert_eq!(
                    stats, stepped_stats,
                    "max_cycles={max_cycles}: {label} stats diverged at timeout"
                );
            }
        }
    }
}
