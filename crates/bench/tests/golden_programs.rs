//! Byte-for-byte golden snapshots of the whole-program workloads.
//!
//! `p1`–`p3` run as emulated processes (startup stack, proxy kernel,
//! trap-and-emulate syscalls), and everything they produce is
//! deterministic: stdout bytes, exit codes, and cycle counts. Two
//! snapshots pin that down:
//!
//! * `programs_stdout.txt` — each program's exit code and exact stdout,
//!   captured on the interpreted backend and asserted bit-identical on
//!   the compiled backend (and between the scalar and DySER legs) before
//!   comparing;
//! * `programs_experiments.csv` — the `repro p1|p2|p3 --csv` rows,
//!   asserted byte-identical under a compiled-backend override before
//!   comparing.
//!
//! Regenerate with `BLESS=1 cargo test -p dyser-bench --test
//! golden_programs` after an intentional change, and review the diff
//! like any other code change.

use dyser_bench::experiments::{PROGRAM_N, SEED};
use dyser_bench::run_experiment;
use dyser_core::{run_whole_program, set_backend_override, Backend, RunConfig};
use dyser_fabric::FabricGeometry;
use dyser_workloads::programs;

const STDOUT_SNAPSHOT: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/programs_stdout.txt");
const CSV_SNAPSHOT: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/programs_experiments.csv");

const PROGRAMS: [&str; 3] = ["p1", "p2", "p3"];

fn check_snapshot(path: &str, got: &str, what: &str) {
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, got).expect("write snapshot");
        return;
    }
    let want =
        std::fs::read_to_string(path).expect("snapshot missing; regenerate with BLESS=1");
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w)
            .map(|(i, (g, w))| format!("line {}:\n  got:  {g}\n  want: {w}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: got {}, want {}",
                    got.lines().count(),
                    want.lines().count()
                )
            });
        panic!(
            "{what} drifted from the golden snapshot (first {mismatch}\n\
             bless with BLESS=1 if the change is intentional)"
        );
    }
}

/// Runs one program on one backend; returns (stdout, exit code), after
/// the harness has already verified both legs against the case's
/// references and each other.
fn run_on(name: &str, backend: Backend) -> (Vec<u8>, u64) {
    let build = programs::by_name(name).expect("known program");
    let geometry = FabricGeometry::new(8, 8);
    let case = build(geometry, PROGRAM_N, SEED).expect("8x8 fits every program");
    let mut config = RunConfig::default();
    config.set_geometry(geometry);
    config.backend = backend;
    let base = run_whole_program("baseline", &case.baseline, &case, &config)
        .unwrap_or_else(|e| panic!("{name} baseline ({backend:?}): {e}"));
    let dyser = run_whole_program("dyser", &case.accelerated, &case, &config)
        .unwrap_or_else(|e| panic!("{name} dyser ({backend:?}): {e}"));
    assert_eq!(base.stdout, dyser.stdout, "{name}: legs disagree on stdout");
    assert_eq!(base.exit_code, dyser.exit_code, "{name}: legs disagree on exit code");
    (dyser.stdout, dyser.exit_code)
}

#[test]
fn program_stdout_is_byte_identical_on_both_backends_and_matches_snapshot() {
    let mut got = String::new();
    for name in PROGRAMS {
        let (out_i, exit_i) = run_on(name, Backend::Interpreted);
        let (out_c, exit_c) = run_on(name, Backend::Compiled);
        assert_eq!(out_i, out_c, "{name}: backends disagree on stdout bytes");
        assert_eq!(exit_i, exit_c, "{name}: backends disagree on exit code");
        let text = String::from_utf8(out_i).expect("program stdout is ASCII");
        got.push_str(&format!("== {name} n={PROGRAM_N} exit={exit_i}\n{text}"));
    }
    check_snapshot(STDOUT_SNAPSHOT, &got, "whole-program stdout");
}

#[test]
fn program_experiment_csv_matches_snapshot_on_both_backends() {
    let got: String = PROGRAMS.iter().map(|id| run_experiment(id).to_csv() + "\n").collect();

    // The same rows under a compiled-backend override (a distinct memo
    // key, so the sweep genuinely re-runs) must be byte-identical.
    set_backend_override(Some(Backend::Compiled));
    let compiled: String =
        PROGRAMS.iter().map(|id| run_experiment(id).to_csv() + "\n").collect();
    set_backend_override(None);
    assert_eq!(got, compiled, "program experiment CSV differs between backends");

    check_snapshot(CSV_SNAPSHOT, &got, "program experiment CSV");
}
