//! Regression test: `repro stats` must report each invocation's own
//! sweep. The harness's speed-stat counters are process-lifetime
//! accumulators, so a second invocation in the same process (`--reps N`,
//! `repro e2 stats`, a long-lived serve daemon) used to fold every
//! earlier run's decode/block-cache counters into the hit-rate notes.

use dyser_bench::experiments::run_experiment_scaled;
use dyser_bench::{stats_attribution, Scale};

#[test]
fn stats_attribution_is_identical_across_reps() {
    let scale = Scale(0.05);
    let first = stats_attribution(scale).to_string();
    let second = stats_attribution(scale).to_string();
    assert_eq!(
        first, second,
        "a repeated stats sweep must not inflate the speed-stat notes"
    );

    // Unrelated simulation between sweeps (an experiment run of its own,
    // which bumps the process-wide counters) must not leak into the next
    // report either.
    run_experiment_scaled("e2", scale);
    let third = stats_attribution(scale).to_string();
    assert_eq!(first, third, "other runs in the process must not leak into the stats notes");
}
