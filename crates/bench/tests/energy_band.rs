//! E6's headline claim checked as a test: on real accelerated suite
//! kernels, the activity model puts the fabric in the prototype's
//! measured power class (~200 mW at 50 MHz).

use dyser_core::{run_kernel, RunConfig};
use dyser_energy::EnergyModel;
use dyser_workloads::suite;

#[test]
fn accelerated_kernels_sit_in_the_200mw_fabric_band() {
    let model = EnergyModel::default();
    let mut powers = Vec::new();
    for k in suite() {
        // A spread of compute-intense micro and regular kernels that the
        // compiler accelerates; sizes kept modest for test time.
        if !matches!(k.name, "poly6" | "vecadd" | "saxpy" | "dot" | "fir4") {
            continue;
        }
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        let case = k.case(512, 0xD75E);
        let r = run_kernel(&case, &config).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert!(r.accelerated_any, "{} should accelerate", k.name);
        let report = r.dyser.energy(&model);
        assert!(
            (100.0..=450.0).contains(&report.fabric_power_mw),
            "{}: fabric power {:.0} mW outside the prototype's class",
            k.name,
            report.fabric_power_mw
        );
        powers.push(report.fabric_power_mw);
    }
    assert_eq!(powers.len(), 5, "all five kernels ran");
    let mean = powers.iter().sum::<f64>() / powers.len() as f64;
    assert!(
        (140.0..=320.0).contains(&mean),
        "mean fabric power {mean:.0} mW should sit near the measured ~200 mW"
    );
}

#[test]
fn baseline_runs_keep_the_fabric_dark() {
    let model = EnergyModel::default();
    let k = suite().into_iter().find(|k| k.name == "saxpy").expect("saxpy in suite");
    let mut config = RunConfig::default();
    config.compiler = k.compiler_options(config.system.geometry);
    let case = k.case(256, 0xD75E);
    let r = run_kernel(&case, &config).expect("saxpy runs");
    let report = r.baseline.energy(&model);
    assert_eq!(report.fabric_nj, 0.0, "no fabric activity on the baseline path");
    assert!(report.core_power_mw > 0.0);
}
