//! Byte-for-byte golden snapshot of `repro all --csv`.
//!
//! The simulation is fully deterministic (see `determinism.rs`), so the
//! machine-readable rendering of the whole evaluation can be pinned
//! exactly: any change to kernel cycle counts, table columns, or CSV
//! escaping shows up as a diff here instead of silently shifting the
//! reported results. Regenerate with `BLESS=1 cargo test -p dyser-bench
//! --test golden_repro` after an intentional change, and review the diff
//! like any other code change.

use dyser_core::{cycle_bucket_totals, simulated_cycles};

use dyser_bench::{run_experiment, EXPERIMENT_IDS};

const SNAPSHOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/repro_all.csv");

/// Exactly what `repro all --csv` writes to stdout: each table's CSV
/// followed by the blank line `println!` appends.
fn full_csv() -> String {
    EXPERIMENT_IDS.iter().map(|id| run_experiment(id).to_csv() + "\n").collect()
}

#[test]
fn repro_all_csv_is_byte_identical_to_snapshot() {
    let got = full_csv();

    // The sweep above simulated every experiment in this process; the
    // attribution identity must hold in aggregate: the per-bucket totals
    // accumulated run by run account for every simulated cycle.
    let acct = cycle_bucket_totals();
    assert_eq!(
        acct.sum(),
        simulated_cycles(),
        "aggregate attribution identity violated across the full sweep"
    );

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(SNAPSHOT, &got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(SNAPSHOT)
        .expect("snapshot missing; regenerate with BLESS=1");
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w)
            .map(|(i, (g, w))| format!("line {}:\n  got:  {g}\n  want: {w}", i + 1))
            .unwrap_or_else(|| {
                format!("line counts differ: got {}, want {}", got.lines().count(), want.lines().count())
            });
        panic!(
            "repro all --csv drifted from the golden snapshot (first {mismatch}\n\
             bless with BLESS=1 if the change is intentional)"
        );
    }
}
