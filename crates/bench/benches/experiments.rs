//! Criterion benches: one per reconstructed table/figure (E1–E10), timing
//! the full simulation stack at reduced input sizes, plus component
//! microbenches for the fabric and pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use dyser_bench::experiments::{run_experiment_scaled, Scale};
use dyser_fabric::{ConfigBuilder, Fabric, FabricGeometry, FuOp};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for id in dyser_bench::EXPERIMENT_IDS {
        group.bench_function(id, |b| {
            b.iter(|| run_experiment_scaled(id, Scale(0.08)));
        });
    }
    group.finish();
}

fn bench_fabric_throughput(c: &mut Criterion) {
    // Steady-state fabric simulation speed: one adder at full occupancy.
    let geom = FabricGeometry::new(4, 4);
    let mut b = ConfigBuilder::new(geom);
    let x = b.input_value(0);
    let y = b.input_value(1);
    let s = b.op(FuOp::IAdd, &[x, y]);
    b.output_value(s, 0);
    let config = b.build().unwrap();

    c.bench_function("fabric_tick_1k", |bencher| {
        bencher.iter(|| {
            let mut fabric = Fabric::new(geom);
            fabric.load_config(&config).unwrap();
            let mut got = 0u64;
            for i in 0..1000u64 {
                while !fabric.try_send(0, i) {
                    fabric.tick();
                    while fabric.try_recv(0).is_some() {
                        got += 1;
                    }
                }
                let _ = fabric.try_send(1, 1);
                fabric.tick();
                while fabric.try_recv(0).is_some() {
                    got += 1;
                }
            }
            while got < 1000 {
                fabric.tick();
                while fabric.try_recv(0).is_some() {
                    got += 1;
                }
            }
            got
        });
    });
}

fn bench_compile(c: &mut Criterion) {
    // Compiler end-to-end latency on a representative kernel.
    let kernel = dyser_workloads::suite()
        .into_iter()
        .find(|k| k.name == "poly6")
        .unwrap();
    let f = kernel.function();
    let opts = kernel.compiler_options(FabricGeometry::new(8, 8));
    c.bench_function("compile_poly6", |bencher| {
        bencher.iter(|| dyser_compiler::compile(&f, &opts).unwrap());
    });
}

criterion_group!(benches, bench_experiments, bench_fabric_throughput, bench_compile);
criterion_main!(benches);
