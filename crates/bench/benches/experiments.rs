//! Dependency-free benches: one per reconstructed table/figure (E1–E10),
//! timing the full simulation stack at reduced input sizes, plus component
//! microbenches for the fabric and pipeline.
//!
//! This is a plain `harness = false` binary (run with `cargo bench`) using a
//! small internal timing loop, so the workspace builds with no crates.io
//! access. Each benchmark reports min/median/mean over a fixed number of
//! timed iterations after a warmup pass.

use std::time::Instant;

use dyser_bench::experiments::{run_experiment_scaled, Scale};
use dyser_fabric::{ConfigBuilder, Fabric, FabricGeometry, FuOp};

/// Times `f` for `iters` iterations (after one warmup call) and prints a
/// criterion-style summary line.
fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    std::hint::black_box(f()); // warmup
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("{name:<28} min {min:>10.3} ms   median {median:>10.3} ms   mean {mean:>10.3} ms");
}

fn bench_experiments() {
    for id in dyser_bench::EXPERIMENT_IDS {
        bench(&format!("experiments/{id}"), 5, || run_experiment_scaled(id, Scale(0.08)));
    }
}

fn bench_fabric_throughput() {
    // Steady-state fabric simulation speed: one adder at full occupancy.
    let geom = FabricGeometry::new(4, 4);
    let mut b = ConfigBuilder::new(geom);
    let x = b.input_value(0);
    let y = b.input_value(1);
    let s = b.op(FuOp::IAdd, &[x, y]);
    b.output_value(s, 0);
    let config = b.build().unwrap();

    bench("fabric_tick_1k", 50, || {
        let mut fabric = Fabric::new(geom);
        fabric.load_config(&config).unwrap();
        let mut got = 0u64;
        for i in 0..1000u64 {
            while !fabric.try_send(0, i) {
                fabric.tick();
                while fabric.try_recv(0).is_some() {
                    got += 1;
                }
            }
            let _ = fabric.try_send(1, 1);
            fabric.tick();
            while fabric.try_recv(0).is_some() {
                got += 1;
            }
        }
        while got < 1000 {
            fabric.tick();
            while fabric.try_recv(0).is_some() {
                got += 1;
            }
        }
        got
    });
}

fn bench_compile() {
    // Compiler end-to-end latency on a representative kernel.
    let kernel = dyser_workloads::suite().into_iter().find(|k| k.name == "poly6").unwrap();
    let f = kernel.function();
    let opts = kernel.compiler_options(FabricGeometry::new(8, 8));
    bench("compile_poly6", 20, || dyser_compiler::compile(&f, &opts).unwrap());
}

fn main() {
    // `cargo bench` passes flags like `--bench`; a filter substring may also
    // be given — honour it so `cargo bench fabric` works as expected.
    let filter: Vec<String> =
        std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let wants = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));

    if wants("experiments") {
        bench_experiments();
    }
    if wants("fabric_tick_1k") {
        bench_fabric_throughput();
    }
    if wants("compile_poly6") {
        bench_compile();
    }
}
