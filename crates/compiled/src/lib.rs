//! # dyser-compiled
//!
//! The compiled-simulation backend: instead of fetching and decoding one
//! instruction per simulated cycle, straight-line spans of the program are
//! *translated once* into pre-decoded [`Block`]s and then executed as
//! specialized thunks dispatched through a PC-keyed [`BlockCache`].
//!
//! The contract is strict bit-equivalence with the interpreted path:
//! every architectural register, every [`CoreStats`] counter, every cache
//! statistic, and every fabric statistic must match the interpreter
//! cycle-for-cycle. The backend therefore never *models* anything — it
//! only removes redundant simulator work that provably cannot be
//! observed:
//!
//! * **Decode** happens once per block at translation time (via the
//!   untimed [`Bus::peek_instr`] view) instead of once per issue. Blocks
//!   snapshot the write generation of their code page and are
//!   re-translated when it moves, so self-modifying code still executes
//!   its freshly written words.
//! * **Fetch** still touches the instruction cache every issue (latency
//!   and LRU state are architectural here), but instructions that share
//!   an L1I line with their predecessor use [`Bus::fetch_repeat`], which
//!   skips the miss machinery: within a block no other agent can evict
//!   the line between the first fetch and the repeats.
//! * **Stall cycles** queued by an instruction are charged in bulk with
//!   [`Pipeline::tick_n`] rather than one tick at a time.
//!
//! Anything the thunk cannot handle without risking divergence — port
//! retries that poll the coprocessor, fences, control leaving the
//! straight line, a store that hits the block's own code page — exits
//! the block (see [`BlockExit`]) and lets the driver fall back to the
//! per-cycle path until the situation clears.
//!
//! [`CoreStats`]: dyser_sparc::CoreStats

#![warn(missing_docs)]

use dyser_isa::{decode, DyserInstr, Instr, InstrClass};
use dyser_sparc::{Bus, Coproc, CoreError, Pipeline};

/// Code-page granularity of translation validity, in bytes. Matches the
/// functional memory's page size: one [`Bus::code_page_generation`] value
/// covers every word a block may contain, so a single snapshot suffices.
pub const CODE_PAGE_BYTES: u64 = 4096;

/// Upper bound on instructions per block: long enough to cover the hot
/// loop bodies of the repro kernels, short enough that translating past
/// an always-taken branch wastes little work.
pub const MAX_BLOCK_INSTRS: usize = 64;

/// Direct-mapped block-cache slots (a power of two). Program text in the
/// repro suite is a few KiB, so collisions are rare; a collision only
/// costs a re-translation, never correctness.
const BLOCK_SLOTS: usize = 2048;

/// One pre-decoded instruction of a block, with the facts the executor
/// needs to dispatch it without re-inspecting the word.
#[derive(Debug, Clone)]
pub struct BlockInstr {
    /// The instruction's address.
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instr,
    /// Whether this issue must take the full [`Bus::fetch_instr`] path:
    /// true for the block's first instruction (the entry word may not be
    /// resident) and for the first word of each instruction-cache line.
    /// All others provably hit the line their predecessor just touched
    /// and may use [`Bus::fetch_repeat`].
    pub must_fetch: bool,
    /// Whether this instruction can write memory in-block (stores and
    /// `dstore` with an immediately available value); after it executes,
    /// the executor re-checks the block's code-page generation.
    pub is_store: bool,
    /// Whether this instruction talks to the coprocessor; the executor
    /// settles deferred fabric ticks before issuing it.
    pub is_coproc: bool,
}

/// A translated straight-line span of the program: up to
/// [`MAX_BLOCK_INSTRS`] consecutively addressed instructions within one
/// code page, pre-decoded.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction; blocks are keyed by exact entry.
    pub entry: u64,
    /// [`Bus::code_page_generation`] of the entry's page at translation
    /// time; the block is stale once the page is written again.
    pub gen: u64,
    /// The pre-decoded instructions. Empty when the entry word itself
    /// does not decode — the driver falls back to the interpreted path,
    /// which raises the identical fault.
    pub instrs: Vec<BlockInstr>,
}

/// Decodes the straight-line span starting at `entry` into a [`Block`].
///
/// Translation reads through the untimed [`Bus::peek_instr`] view, so it
/// perturbs no cache or latency state. It stops at the first word that
/// does not decode, at a `halt`, at the code-page boundary, or at
/// [`MAX_BLOCK_INSTRS`]. `line_bytes` is the instruction-cache line size
/// used to mark which issues need a real fetch.
pub fn translate<B: Bus>(bus: &B, entry: u64, line_bytes: u64) -> Block {
    let gen = bus.code_page_generation(entry);
    let page = entry / CODE_PAGE_BYTES;
    let mut instrs = Vec::new();
    let mut pc = entry;
    while instrs.len() < MAX_BLOCK_INSTRS && pc / CODE_PAGE_BYTES == page {
        let Ok(instr) = decode(bus.peek_instr(pc)) else { break };
        instrs.push(BlockInstr {
            pc,
            instr,
            must_fetch: pc == entry || pc.is_multiple_of(line_bytes),
            is_store: matches!(
                instr,
                Instr::Store { .. } | Instr::StoreF { .. } | Instr::Dyser(DyserInstr::Store { .. })
            ),
            is_coproc: instr.class() == InstrClass::Dyser,
        });
        if matches!(instr, Instr::Halt | Instr::Trap { .. }) {
            break;
        }
        pc += 4;
    }
    Block { entry, gen, instrs }
}

/// Why [`run_block`] stopped executing its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Every instruction of the block retired and control fell through
    /// its end; dispatch again at the core's current PC.
    Completed,
    /// Control left the straight line (taken branch, call, return);
    /// dispatch again at the core's current PC.
    Jumped,
    /// The core executed `halt`.
    Halted,
    /// The core retired a `ta` trap and froze awaiting syscall service;
    /// the driver must service it before dispatching another block.
    Trapped,
    /// A non-counted micro-state (port retry, fence) reached the front
    /// of the pending queue; the caller must tick per-cycle until it
    /// drains, because each such cycle polls the coprocessor.
    Pending,
    /// The cycle budget ran out mid-block.
    Budget,
    /// A store moved the write generation of the block's own code page;
    /// the block is stale and must be re-translated.
    PageWritten,
}

/// The outcome of one [`run_block`] call: why it stopped and how many
/// cycles it consumed.
#[derive(Debug, Clone, Copy)]
pub struct BlockRun {
    /// Why the block stopped.
    pub exit: BlockExit,
    /// Cycles charged to the core during this call.
    pub cycles: u64,
}

/// Executes `block` on `cpu` until it exits, spending at most `budget`
/// cycles.
///
/// The caller must dispatch the block whose `entry` equals the core's
/// current PC, with no pending micro-state and the core not halted.
/// `fabric_ticks` is the running count of coprocessor ticks already paid
/// (see [`Coproc::cp_catch_up`]); the executor settles it to the core's
/// cycle count immediately before any coprocessor-touching instruction,
/// so the fabric observes exactly the interpreter's interleaving.
///
/// # Errors
///
/// Propagates [`CoreError`]s exactly as the interpreted path would; the
/// core is left halted on the faulting cycle.
pub fn run_block<B: Bus, C: Coproc>(
    cpu: &mut Pipeline,
    bus: &mut B,
    coproc: &mut C,
    block: &Block,
    budget: u64,
    fabric_ticks: &mut u64,
) -> Result<BlockRun, CoreError> {
    debug_assert!(
        !cpu.halted() && !cpu.has_pending() && cpu.pending_syscall().is_none(),
        "run_block needs a clean issue state"
    );
    let mut used = 0u64;
    let done = |exit, used| Ok(BlockRun { exit, cycles: used });
    for bi in &block.instrs {
        if used == budget {
            return done(BlockExit::Budget, used);
        }
        // The continuity check: delay slots, taken branches, and returns
        // all show up as the core's PC leaving the block's straight line.
        if cpu.pc() != bi.pc {
            return done(BlockExit::Jumped, used);
        }
        if bi.is_coproc {
            let owed = cpu.stats().cycles - *fabric_ticks;
            coproc.cp_catch_up(owed);
            *fabric_ticks += owed;
        }
        let fetch_lat =
            if bi.must_fetch { bus.fetch_instr(bi.pc).1 } else { bus.fetch_repeat(bi.pc) };
        cpu.step_decoded(bi.instr, fetch_lat, bus, coproc)?;
        used += 1;
        if cpu.halted() {
            return done(BlockExit::Halted, used);
        }
        if cpu.pending_syscall().is_some() {
            return done(BlockExit::Trapped, used);
        }
        if bi.is_store && bus.code_page_generation(block.entry) != block.gen {
            return done(BlockExit::PageWritten, used);
        }
        // Charge the instruction's counted stalls in bulk.
        loop {
            let horizon = cpu.skip_horizon();
            if horizon == 0 {
                break;
            }
            let n = horizon.min(budget - used);
            cpu.tick_n(n);
            used += n;
            if n < horizon {
                return done(BlockExit::Budget, used);
            }
        }
        if cpu.has_pending() {
            return done(BlockExit::Pending, used);
        }
    }
    done(BlockExit::Completed, used)
}

/// Counters describing how well block translation is amortizing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Dispatches served by an already-translated, still-valid block.
    pub hits: u64,
    /// Dispatches that had to translate (cold slot or conflict).
    pub misses: u64,
    /// Misses caused by a stale code-page generation — the price of
    /// self-modifying code, counted separately from cold misses.
    pub invalidations: u64,
}

impl BlockCacheStats {
    /// Counter-wise difference against an earlier snapshot (saturating),
    /// turning process-lifetime totals into the counts of one window.
    #[must_use]
    pub fn minus(&self, earlier: &BlockCacheStats) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }
}

/// A direct-mapped cache of translated [`Block`]s keyed by exact entry
/// PC, validated against the code page's write generation on every
/// lookup.
#[derive(Debug)]
pub struct BlockCache {
    slots: Vec<Option<Block>>,
    stats: BlockCacheStats,
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        BlockCache { slots: vec![None; BLOCK_SLOTS], stats: BlockCacheStats::default() }
    }

    /// Hit/miss/invalidation counters.
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Drops every translated block (used when a new program is loaded).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.stats = BlockCacheStats::default();
    }

    /// Returns the valid block entered at `pc`, translating it if the
    /// slot is cold, holds a different entry, or went stale.
    pub fn lookup<B: Bus>(&mut self, bus: &B, pc: u64, line_bytes: u64) -> &Block {
        let slot = ((pc >> 2) as usize) & (BLOCK_SLOTS - 1);
        let gen = bus.code_page_generation(pc);
        match &self.slots[slot] {
            Some(b) if b.entry == pc && b.gen == gen => self.stats.hits += 1,
            cached => {
                if matches!(cached, Some(b) if b.entry == pc) {
                    self.stats.invalidations += 1;
                }
                self.stats.misses += 1;
                self.slots[slot] = Some(translate(bus, pc, line_bytes));
            }
        }
        self.slots[slot].as_ref().expect("slot was just filled")
    }
}

impl Default for BlockCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_isa::{regs, AluOp, Assembler, ICond, Op2};
    use dyser_sparc::{NullCoproc, SimpleBus};

    const ENTRY: u64 = 0x1000;

    fn program(build: impl FnOnce(&mut Assembler)) -> SimpleBus {
        let mut asm = Assembler::new();
        build(&mut asm);
        let words = asm.assemble().expect("test programs assemble");
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        bus
    }

    #[test]
    fn translate_stops_at_halt_and_marks_lines() {
        let bus = program(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 1));
            asm.push(Instr::Nop);
            asm.push(Instr::Halt);
            asm.push(Instr::Nop); // unreachable: must not be translated
        });
        let block = translate(&bus, ENTRY, 16);
        assert_eq!(block.instrs.len(), 3);
        assert!(block.instrs[0].must_fetch, "entry always fetches");
        assert!(!block.instrs[1].must_fetch, "same 16-byte line as entry");
        assert!(!block.instrs[2].must_fetch);
        let block = translate(&bus, ENTRY + 4, 16);
        assert!(block.instrs[0].must_fetch, "mid-line entries still fetch");
    }

    #[test]
    fn translate_stops_at_undecodable_word() {
        let mut bus = program(|asm| {
            asm.push(Instr::Nop);
        });
        bus.memory_mut().write_u32(ENTRY + 4, 0); // illegal word
        let block = translate(&bus, ENTRY, 32);
        assert_eq!(block.instrs.len(), 1);
        let empty = translate(&bus, ENTRY + 4, 32);
        assert!(empty.instrs.is_empty(), "entry on the illegal word yields an empty block");
    }

    #[test]
    fn translate_respects_page_boundary() {
        let mut bus = SimpleBus::new();
        let entry = CODE_PAGE_BYTES - 8; // two words below the boundary
        let words = vec![dyser_isa::encode(&Instr::Nop); 3];
        bus.memory_mut().write_code(entry, &words);
        let block = translate(&bus, entry, 32);
        assert_eq!(block.instrs.len(), 2, "block must not cross its code page");
    }

    /// Runs the same program interpreted and compiled; states must match.
    fn assert_backends_agree(build: impl Fn(&mut Assembler)) {
        let mut ibus = program(&build);
        let mut icpu = Pipeline::new(ENTRY);
        icpu.run(&mut ibus, &mut NullCoproc, 100_000).expect("interpreted run");

        let mut cbus = program(&build);
        let mut ccpu = Pipeline::new(ENTRY);
        let mut cache = BlockCache::new();
        let mut fabric_ticks = 0u64;
        let mut remaining = 100_000u64;
        while remaining > 0 && !ccpu.halted() {
            if ccpu.has_pending() {
                let skip = ccpu.skip_horizon().min(remaining);
                if skip > 0 {
                    ccpu.tick_n(skip);
                    remaining -= skip;
                } else {
                    ccpu.tick(&mut cbus, &mut NullCoproc).expect("tick");
                    remaining -= 1;
                }
                continue;
            }
            let block = cache.lookup(&cbus, ccpu.pc(), 16);
            assert!(!block.instrs.is_empty(), "test programs decode");
            let run = run_block(
                &mut ccpu,
                &mut cbus,
                &mut NullCoproc,
                block,
                remaining,
                &mut fabric_ticks,
            )
            .expect("compiled run");
            remaining -= run.cycles;
        }

        assert!(ccpu.halted(), "compiled run must finish");
        assert_eq!(icpu.stats(), ccpu.stats(), "core statistics diverged");
        assert_eq!(
            format!("{:?}", icpu.regs()),
            format!("{:?}", ccpu.regs()),
            "register files diverged"
        );
        assert_eq!(
            ibus.memory().read_bytes(0x200, 32),
            cbus.memory().read_bytes(0x200, 32),
            "memory diverged"
        );
        let (_, misses) = ccpu.decode_cache_stats();
        assert_eq!(misses, 0, "compiled path must never touch the interpreter's decoder");
    }

    #[test]
    fn straightline_matches_interpreter() {
        assert_backends_agree(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 40));
            asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(2)));
            asm.push(Instr::alu(AluOp::Mulx, regs::O1, regs::O0, Op2::Imm(3)));
            asm.push(Instr::Halt);
        });
    }

    #[test]
    fn loops_and_delay_slots_match_interpreter() {
        assert_backends_agree(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 25));
            asm.push(Instr::mov_imm(regs::O1, 0));
            asm.label("loop");
            asm.push(Instr::alu(AluOp::Add, regs::O1, regs::O1, Op2::Imm(3)));
            asm.push(Instr::alu(AluOp::SubCc, regs::O0, regs::O0, Op2::Imm(1)));
            asm.branch(ICond::Ne, "loop");
            asm.push(Instr::Nop); // delay slot
            asm.push(Instr::Halt);
        });
    }

    #[test]
    fn memory_traffic_matches_interpreter() {
        assert_backends_agree(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 0x200));
            asm.push(Instr::mov_imm(regs::O1, 7));
            asm.push(Instr::Store {
                kind: dyser_isa::StoreKind::Stx,
                rs: regs::O1,
                rs1: regs::O0,
                op2: Op2::Imm(0),
            });
            asm.push(Instr::Load {
                kind: dyser_isa::LoadKind::Ldx,
                rd: regs::O2,
                rs1: regs::O0,
                op2: Op2::Imm(0),
            });
            asm.push(Instr::alu(AluOp::Add, regs::O3, regs::O2, Op2::Imm(1))); // load-use
            asm.push(Instr::Halt);
        });
    }

    #[test]
    fn self_modifying_code_invalidates_block() {
        // The program overwrites the instruction AFTER the store with a
        // different constant move, then runs it: the executor must notice
        // the generation bump and re-translate instead of running the
        // stale thunk.
        let mut asm = Assembler::new();
        asm.push(Instr::mov_imm(regs::O1, 0)); // O1 = 0
        // Build the word for `mov 7, %o1` in O0 and store it over the
        // placeholder `mov 5, %o1` below.
        let patched = dyser_isa::encode(&Instr::mov_imm(regs::O1, 7));
        asm.push(Instr::Sethi { rd: regs::O0, imm22: patched >> 10 });
        asm.push(Instr::alu(AluOp::Or, regs::O0, regs::O0, Op2::Imm((patched & 0x3FF) as i16)));
        let target = ENTRY + 7 * 4; // the placeholder's address
        asm.push(Instr::Sethi { rd: regs::O2, imm22: (target >> 10) as u32 });
        asm.push(Instr::alu(AluOp::Or, regs::O2, regs::O2, Op2::Imm((target & 0x3FF) as i16)));
        asm.push(Instr::Store {
            kind: dyser_isa::StoreKind::Stw,
            rs: regs::O0,
            rs1: regs::O2,
            op2: Op2::Imm(0),
        });
        asm.push(Instr::Nop);
        asm.push(Instr::mov_imm(regs::O1, 5)); // placeholder, patched to 7
        asm.push(Instr::Halt);
        let words = asm.assemble().expect("assembles");

        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        let mut cache = BlockCache::new();
        let mut fabric_ticks = 0u64;
        let mut remaining = 10_000u64;
        while remaining > 0 && !cpu.halted() {
            if cpu.has_pending() {
                let skip = cpu.skip_horizon().min(remaining);
                if skip > 0 {
                    cpu.tick_n(skip);
                    remaining -= skip;
                } else {
                    cpu.tick(&mut bus, &mut NullCoproc).expect("tick");
                    remaining -= 1;
                }
                continue;
            }
            let block = cache.lookup(&bus, cpu.pc(), 16);
            let run =
                run_block(&mut cpu, &mut bus, &mut NullCoproc, block, remaining, &mut fabric_ticks)
                    .expect("run");
            remaining -= run.cycles;
            if run.exit == BlockExit::PageWritten {
                assert!(cache.stats().misses >= 1);
            }
        }
        assert!(cpu.halted());
        assert_eq!(cpu.regs().read(regs::O1), 7, "the patched instruction must execute");
        assert!(cache.stats().misses >= 2, "the patch must force a re-translation");
        // Re-entering the original block after the patch detects staleness.
        let invalidations = cache.stats().invalidations;
        cache.lookup(&bus, ENTRY, 16);
        assert_eq!(cache.stats().invalidations, invalidations + 1);
    }

    #[test]
    fn budget_exhaustion_is_exact() {
        let bus = program(|asm| {
            for _ in 0..20 {
                asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(1)));
            }
            asm.push(Instr::Halt);
        });
        for budget in [0u64, 1, 5, 19] {
            let mut bus = bus.clone();
            let mut cpu = Pipeline::new(ENTRY);
            let block = translate(&bus, ENTRY, 16);
            let mut ticks = 0u64;
            let run = run_block(&mut cpu, &mut bus, &mut NullCoproc, &block, budget, &mut ticks)
                .expect("run");
            assert_eq!(run.exit, BlockExit::Budget);
            assert_eq!(run.cycles, budget);
            assert_eq!(cpu.stats().cycles, budget, "not a cycle more than the budget");
        }
    }

    #[test]
    fn block_cache_hits_on_reuse() {
        let bus = program(|asm| {
            asm.push(Instr::Nop);
            asm.push(Instr::Halt);
        });
        let mut cache = BlockCache::new();
        cache.lookup(&bus, ENTRY, 16);
        cache.lookup(&bus, ENTRY, 16);
        cache.lookup(&bus, ENTRY + 4, 16);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidations), (1, 2, 0));
    }
}
