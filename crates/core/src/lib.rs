//! # dyser-core
//!
//! The SPARC-DySER system: the paper's primary contribution, assembled.
//!
//! [`System`] wires the OpenSPARC-T1-like pipeline (`dyser-sparc`), the
//! DySER fabric (`dyser-fabric`), and the blocking cache hierarchy
//! (`dyser-mem`) into one lock-step cycle-level machine. The pipeline's
//! decode/execute stages reach the fabric through the coprocessor
//! interface exactly as the prototype's ISA extension does: `dinit`
//! streams a configuration, `dsend`/`dload` feed input ports,
//! `drecv`/`dstore` drain output ports, and `dfence` waits for the fabric
//! to empty.
//!
//! [`harness`] builds on the system to run whole *experiments*: it takes
//! a kernel (IR + inputs + expected outputs), compiles it with
//! `dyser-compiler` into the baseline and accelerated binaries, runs both
//! on identically configured systems, **checks both outputs against the
//! reference**, and reports cycles, speedup, instruction mixes, stalls,
//! and energy — the raw rows of every table and figure in the evaluation.
//!
//! ```
//! use dyser_core::{System, SystemConfig};
//! use dyser_isa::{Assembler, Instr, AluOp, Op2, regs};
//!
//! let mut asm = Assembler::new();
//! asm.push(Instr::mov_imm(regs::O0, 21));
//! asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Reg(regs::O0)));
//! asm.push(Instr::Halt);
//!
//! let mut sys = System::new(SystemConfig::default());
//! sys.load_raw(0x10000, &asm.assemble()?);
//! sys.run(10_000)?;
//! assert_eq!(sys.cpu().regs().read(regs::O0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```


#![warn(missing_docs)]
pub mod batch;
pub mod harness;
pub mod report;
pub mod system;

pub use batch::{run_batch, BatchEngine, BatchItem, BatchOutcome, BatchReport};
pub use harness::{
    backend_override, compile_cached, cycle_bucket_totals, default_workers, parallel_map,
    run_kernel, run_kernel_batch, run_kernels, run_program, run_program_case, run_program_traced,
    run_whole_program, set_backend_override, set_trace_capacity, simulated_cycles,
    speed_stat_totals, take_traces, trace_capacity, Backend, HarnessError, KernelCase, KernelJob,
    KernelResult, ProgramCase, ProgramRun, RunArtifacts, RunConfig,
};
pub use system::{RunStats, SpeedStats, SysError, System, SystemConfig, HEAP_BASE, STACK_BASE};
