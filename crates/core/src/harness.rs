//! The experiment harness: compile a kernel both ways, run both systems,
//! verify both outputs, and report the measurements.
//!
//! This is the software equivalent of the paper's evaluation flow: the
//! same source is compiled for OpenSPARC (baseline) and SPARC-DySER
//! (accelerated), both run the same inputs on identically configured
//! machines, and correctness is established by comparing every output
//! buffer against a reference computed independently.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use dyser_compiler::{
    compile, CompileError, CompiledProgram, CompilerOptions, Function, Program, RegionReport,
};
use dyser_sparc::{CycleAccount, CycleBucket};
use dyser_trace::TraceRun;

use crate::batch::{run_batch, BatchEngine, BatchItem};
use crate::system::{RunStats, SpeedStats, SysError, System, SystemConfig};

/// A runnable kernel instance: IR, arguments, input memory, and the
/// reference outputs.
#[derive(Debug, Clone)]
pub struct KernelCase {
    /// Display name.
    pub name: String,
    /// The kernel function.
    pub function: Function,
    /// Arguments passed in `%o0..%o5` (buffer addresses, sizes, scalars).
    pub args: Vec<u64>,
    /// Initial memory contents: `(address, words)`.
    pub init: Vec<(u64, Vec<u64>)>,
    /// Expected memory after the run: `(address, words)`.
    pub expected: Vec<(u64, Vec<u64>)>,
}

/// Which execution engine drives a simulation run.
///
/// All backends produce bit-identical [`RunStats`]; they differ only in
/// how much simulator work they spend per simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Fetch, decode, and execute every issue, fast-forwarding counted
    /// stalls (`System::run`).
    #[default]
    Interpreted,
    /// Translate straight-line spans once and dispatch pre-decoded block
    /// thunks (`System::run_compiled`).
    Compiled,
}

impl Backend {
    /// Parses a CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "interpreted" | "interp" => Ok(Backend::Interpreted),
            "compiled" => Ok(Backend::Compiled),
            other => Err(format!("unknown backend {other:?} (interpreted|compiled)")),
        }
    }

    /// The canonical CLI spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Interpreted => "interpreted",
            Backend::Compiled => "compiled",
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// System parameters (shared by both runs).
    pub system: SystemConfig,
    /// Compiler parameters.
    pub compiler: CompilerOptions,
    /// Cycle budget per run.
    pub max_cycles: u64,
    /// Use the per-cycle reference path (`System::run_stepped`) instead
    /// of the stall fast-forwarding default. The two paths produce
    /// bit-identical `RunStats` — this switch exists so the equivalence
    /// tests can prove it through the full harness. Takes precedence
    /// over `backend`.
    pub stepped: bool,
    /// Execution engine for non-stepped runs (overridable process-wide
    /// with [`set_backend_override`]).
    pub backend: Backend,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            system: SystemConfig::default(),
            compiler: CompilerOptions::default(),
            max_cycles: 50_000_000,
            stepped: false,
            backend: Backend::Interpreted,
        }
    }
}

impl RunConfig {
    /// Sets the fabric geometry on both the system and the compiler.
    ///
    /// The two copies must agree or the scheduler targets hardware that
    /// does not exist; every sweep that varies geometry should go through
    /// here rather than assigning the fields separately.
    pub fn set_geometry(&mut self, geometry: dyser_fabric::FabricGeometry) {
        self.system.geometry = geometry;
        self.compiler.geometry = geometry;
    }

    /// Sets explicit per-site FU kinds on both the system and the
    /// compiler (`None` restores the default heterogeneous pattern).
    pub fn set_kinds(&mut self, kinds: Option<Vec<dyser_fabric::FuKind>>) {
        self.system.kinds = kinds.clone();
        self.compiler.kinds = kinds;
    }

    /// Makes every FU site a [`dyser_fabric::FuKind::Universal`] unit on
    /// the current geometry (used by idealised sweeps).
    pub fn set_universal_fus(&mut self) {
        let kinds = vec![dyser_fabric::FuKind::Universal; self.system.geometry.fu_count()];
        self.set_kinds(Some(kinds));
    }
}

/// The outcome of one kernel experiment.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Baseline run statistics.
    pub baseline: RunStats,
    /// Accelerated run statistics.
    pub dyser: RunStats,
    /// Baseline cycles / accelerated cycles.
    pub speedup: f64,
    /// Whether any region was actually accelerated.
    pub accelerated_any: bool,
    /// Compiler region reports.
    pub regions: Vec<RegionReport>,
    /// Static code sizes (baseline, accelerated).
    pub code_sizes: (usize, usize),
}

impl KernelResult {
    /// Dynamic instruction reduction: `1 - dyser/baseline`.
    pub fn instr_reduction(&self) -> f64 {
        if self.baseline.core.instructions == 0 {
            0.0
        } else {
            1.0 - self.dyser.core.instructions as f64 / self.baseline.core.instructions as f64
        }
    }
}

/// Harness failures.
#[derive(Debug)]
pub enum HarnessError {
    /// Compilation failed.
    Compile(CompileError),
    /// A run faulted or timed out.
    Run {
        /// `"baseline"` or `"dyser"`.
        which: &'static str,
        /// The underlying error.
        source: SysError,
    },
    /// An output buffer mismatched the reference.
    Mismatch {
        /// `"baseline"` or `"dyser"`.
        which: &'static str,
        /// Address of the first mismatching word.
        addr: u64,
        /// Expected bits.
        expected: u64,
        /// Observed bits.
        got: u64,
    },
    /// A whole-program run's captured stdout differed from the reference.
    StdoutMismatch {
        /// `"baseline"` or `"dyser"`.
        which: &'static str,
        /// Expected bytes.
        expected: Vec<u8>,
        /// Observed bytes.
        got: Vec<u8>,
    },
    /// A whole-program run exited with the wrong code.
    ExitMismatch {
        /// `"baseline"` or `"dyser"`.
        which: &'static str,
        /// Expected exit code.
        expected: u64,
        /// Observed exit code.
        got: u64,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Compile(e) => write!(f, "compile: {e}"),
            HarnessError::Run { which, source } => write!(f, "{which} run: {source}"),
            HarnessError::Mismatch { which, addr, expected, got } => write!(
                f,
                "{which} output mismatch at {addr:#x}: expected {expected:#018x}, got {got:#018x}"
            ),
            HarnessError::StdoutMismatch { which, expected, got } => write!(
                f,
                "{which} stdout mismatch: expected {:?}, got {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(got)
            ),
            HarnessError::ExitMismatch { which, expected, got } => {
                write!(f, "{which} exit code mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CompileError> for HarnessError {
    fn from(e: CompileError) -> Self {
        HarnessError::Compile(e)
    }
}

/// Simulated cycles accumulated by every [`run_program`] call in this
/// process; the numerator of the harness's cycles-per-second throughput
/// reported by `repro --time`.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Total simulated cycles across all runs so far in this process.
#[must_use]
pub fn simulated_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Per-bucket cycle totals accumulated by every [`run_program`] call,
/// indexed like [`CycleBucket::ALL`]. Together they account for every
/// entry in [`SIM_CYCLES`] — the process-wide face of the attribution
/// identity.
static BUCKET_TOTALS: [AtomicU64; 9] = [const { AtomicU64::new(0) }; 9];

/// The aggregate cycle attribution of every run so far in this process.
///
/// The returned account is balanced by construction: its `total_cycles`
/// equals [`simulated_cycles`] sampled at the same moment the buckets
/// were read (modulo races with concurrently finishing runs).
#[must_use]
pub fn cycle_bucket_totals() -> CycleAccount {
    let mut acct = CycleAccount::default();
    for (i, bucket) in CycleBucket::ALL.iter().enumerate() {
        acct.add(*bucket, BUCKET_TOTALS[i].load(Ordering::Relaxed));
    }
    acct.total_cycles = acct.sum();
    acct
}

/// Process-wide backend override: 0 = none (use each job's `RunConfig`),
/// 1 = interpreted, 2 = compiled. Lets the CLI's `--backend` flag reach
/// every run without threading through each experiment constructor.
static BACKEND_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Forces every subsequent [`run_program`] call in this process onto the
/// given backend (`None` restores per-job configuration).
pub fn set_backend_override(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::Interpreted) => 1,
        Some(Backend::Compiled) => 2,
    };
    BACKEND_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The backend override currently in force (see [`set_backend_override`]).
///
/// Exposed so callers that memoize results keyed on effective
/// configuration (the `repro` table cache) can fold the override into
/// their keys.
#[must_use]
pub fn backend_override() -> Option<Backend> {
    match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(Backend::Interpreted),
        2 => Some(Backend::Compiled),
        _ => None,
    }
}

/// Simulator-speed counters (decode cache, block cache) accumulated by
/// every [`run_program`] call, in [`SpeedStats`] field order: decode
/// hits, decode misses, block hits, block misses, block invalidations.
static SPEED_TOTALS: [AtomicU64; 5] = [const { AtomicU64::new(0) }; 5];

/// The aggregate issue-path cache counters of every run so far in this
/// process (see [`SpeedStats`]).
#[must_use]
pub fn speed_stat_totals() -> SpeedStats {
    SpeedStats {
        decode_hits: SPEED_TOTALS[0].load(Ordering::Relaxed),
        decode_misses: SPEED_TOTALS[1].load(Ordering::Relaxed),
        blocks: dyser_compiled::BlockCacheStats {
            hits: SPEED_TOTALS[2].load(Ordering::Relaxed),
            misses: SPEED_TOTALS[3].load(Ordering::Relaxed),
            invalidations: SPEED_TOTALS[4].load(Ordering::Relaxed),
        },
    }
}

/// Ring-buffer capacity for event tracing in [`run_program`]; zero (the
/// default) disables tracing entirely.
static TRACE_CAP: AtomicUsize = AtomicUsize::new(0);

/// Completed traces awaiting collection by [`take_traces`].
static TRACE_SINK: Mutex<Vec<TraceRun>> = Mutex::new(Vec::new());

/// Enables (capacity > 0) or disables (capacity == 0) event tracing for
/// subsequent [`run_program`] calls in this process. Each run traces into
/// per-component ring buffers of `capacity` events.
pub fn set_trace_capacity(capacity: usize) {
    TRACE_CAP.store(capacity, Ordering::Relaxed);
}

/// The event-tracing ring capacity currently in force (zero = disabled).
/// Result caches consult this: a memoized replay would silently drop the
/// trace the original run produced, so caching is bypassed while tracing.
#[must_use]
pub fn trace_capacity() -> usize {
    TRACE_CAP.load(Ordering::Relaxed)
}

/// Drains every trace recorded since the last call, in run-completion
/// order.
#[must_use]
pub fn take_traces() -> Vec<TraceRun> {
    std::mem::take(&mut *TRACE_SINK.lock().expect("trace sink lock"))
}

/// Credits one finished run to the process-wide accounting: simulated
/// cycles, cycle buckets, and issue-path cache counters. Every path that
/// completes a simulation — serial or batched — must pass through here
/// exactly once per run, so `repro --time` throughput and `repro stats`
/// attribution describe the whole process regardless of scheduler.
fn credit_run(stats: &RunStats, speed: &SpeedStats) {
    for (slot, count) in SPEED_TOTALS.iter().zip([
        speed.decode_hits,
        speed.decode_misses,
        speed.blocks.hits,
        speed.blocks.misses,
        speed.blocks.invalidations,
    ]) {
        slot.fetch_add(count, Ordering::Relaxed);
    }
    SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
    let acct = stats.cycle_account();
    for (i, bucket) in CycleBucket::ALL.iter().enumerate() {
        BUCKET_TOTALS[i].fetch_add(acct.get(*bucket), Ordering::Relaxed);
    }
}

/// Everything one simulated job produces beyond its verdict: the run
/// statistics, the per-run issue-path cache counters, and (when the
/// caller asked for one) the run's own trace — owned by the caller, not
/// deposited in the process-global sink. The serve daemon's shard
/// workers rely on this ownership: concurrent jobs must never interleave
/// their artifacts through shared process state.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The run's statistics (bit-identical across backends).
    pub stats: RunStats,
    /// This run's issue-path cache counters (decode and block caches).
    pub speed: SpeedStats,
    /// The run's trace, if `trace_capacity > 0` was requested.
    pub trace: Option<TraceRun>,
}

/// Runs one already-compiled program and verifies its outputs, returning
/// every artifact to the caller ([`RunArtifacts`]).
///
/// `trace_capacity > 0` enables event tracing into per-component ring
/// buffers of that many events; the merged trace comes back in the
/// artifacts instead of the process-global sink, so concurrent callers
/// each own exactly their job's events.
///
/// The process-wide accounting (simulated cycles, cycle buckets, speed
/// totals) is still credited — those totals describe the whole process
/// by design.
///
/// # Errors
///
/// Fails on core faults, timeouts, invalid configurations, or output
/// mismatches.
pub fn run_program_traced(
    which: &'static str,
    program: &Program,
    args: &[u64],
    init: &[(u64, Vec<u64>)],
    expected: &[(u64, Vec<u64>)],
    config: &RunConfig,
    trace_capacity: usize,
) -> Result<RunArtifacts, HarnessError> {
    let mut sys =
        System::try_new(config.system.clone()).map_err(|source| HarnessError::Run { which, source })?;
    sys.load_program(program)
        .map_err(|source| HarnessError::Run { which, source })?;
    for (addr, words) in init {
        sys.memory_mut().write_u64_slice(*addr, words);
    }
    sys.set_args(args);
    if trace_capacity > 0 {
        sys.enable_trace(trace_capacity);
    }
    let run = if config.stepped {
        sys.run_stepped(config.max_cycles)
    } else {
        match backend_override().unwrap_or(config.backend) {
            Backend::Interpreted => sys.run(config.max_cycles),
            Backend::Compiled => sys.run_compiled(config.max_cycles),
        }
    };
    let stats = run.map_err(|source| HarnessError::Run { which, source })?;
    let speed = sys.speed_stats();
    credit_run(&stats, &speed);
    let trace = sys
        .take_trace()
        .map(|(events, dropped)| TraceRun { label: which.to_string(), events, dropped });
    verify_expected(&sys, expected, which)?;
    Ok(RunArtifacts { stats, speed, trace })
}

/// Runs one already-compiled program (IR not required — manual DySER
/// implementations use this too) and verifies its outputs.
///
/// Tracing follows the process-wide capacity ([`set_trace_capacity`]);
/// any recorded trace lands in the global sink for [`take_traces`]. Use
/// [`run_program_traced`] to own the artifacts per call instead.
///
/// # Errors
///
/// Fails on core faults, timeouts, or output mismatches.
pub fn run_program(
    which: &'static str,
    program: &Program,
    args: &[u64],
    init: &[(u64, Vec<u64>)],
    expected: &[(u64, Vec<u64>)],
    config: &RunConfig,
) -> Result<RunStats, HarnessError> {
    let trace_cap = TRACE_CAP.load(Ordering::Relaxed);
    let artifacts = run_program_traced(which, program, args, init, expected, config, trace_cap)?;
    if let Some(run) = artifacts.trace {
        TRACE_SINK.lock().expect("trace sink lock").push(run);
    }
    Ok(artifacts.stats)
}

/// Process-global cache of compiled programs.
///
/// Experiment sweeps compile the same `(kernel, options)` pair dozens of
/// times — every experiment rebuilds the suite from scratch. Compilation
/// is deterministic, so the result can be shared: the cache key is the
/// exhaustive `Debug` rendering of both inputs (structural equality by
/// construction, no `Hash`/`Eq` impls required on compiler types).
static COMPILE_CACHE: OnceLock<Mutex<HashMap<String, Arc<CompiledProgram>>>> = OnceLock::new();

/// Compiles `function` under `options`, memoising the result for the
/// lifetime of the process.
///
/// Compilation runs outside the cache lock, so parallel workers can
/// compile *different* kernels concurrently; two workers racing on the
/// same key both compile, and the first insertion wins (the results are
/// identical — compilation is deterministic).
///
/// # Errors
///
/// Propagates [`CompileError`]; failures are not cached.
pub fn compile_cached(
    function: &Function,
    options: &CompilerOptions,
) -> Result<Arc<CompiledProgram>, CompileError> {
    let key = format!("{function:?}\u{1f}{options:?}");
    let cache = COMPILE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("compile cache lock").get(&key) {
        return Ok(Arc::clone(hit));
    }
    let compiled = Arc::new(compile(function, options)?);
    let mut map = cache.lock().expect("compile cache lock");
    Ok(Arc::clone(map.entry(key).or_insert(compiled)))
}

/// Compiles and runs `case` both ways; verifies both runs.
///
/// The two simulations are independent, so they execute on two scoped
/// threads and a multi-core host overlaps them; results and error
/// priority (baseline first) are identical to running them back to back.
///
/// # Errors
///
/// Fails on compile errors, run faults, or verification mismatches —
/// a mismatch is a simulator or compiler bug, never tolerated.
pub fn run_kernel(case: &KernelCase, config: &RunConfig) -> Result<KernelResult, HarnessError> {
    let compiled = compile_cached(&case.function, &config.compiler)?;
    let CompiledProgram { baseline, accelerated, regions, accelerated_any, .. } = &*compiled;

    let (base_stats, dyser_stats) = thread::scope(|s| {
        let base = s.spawn(|| {
            run_program("baseline", baseline, &case.args, &case.init, &case.expected, config)
        });
        let dyser =
            run_program("dyser", accelerated, &case.args, &case.init, &case.expected, config);
        (base.join().expect("baseline run thread"), dyser)
    });
    let base_stats = base_stats?;
    let dyser_stats = dyser_stats?;

    let speedup = base_stats.cycles as f64 / dyser_stats.cycles.max(1) as f64;
    Ok(KernelResult {
        name: case.name.clone(),
        speedup,
        accelerated_any: *accelerated_any,
        regions: regions.clone(),
        code_sizes: (baseline.len(), accelerated.len()),
        baseline: base_stats,
        dyser: dyser_stats,
    })
}

/// One queued kernel experiment: the case plus the configuration to run
/// it under.
pub type KernelJob = (KernelCase, RunConfig);

/// Worker count for [`run_kernels`]: the host's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on `threads` scoped worker threads.
///
/// Workers claim items from a shared atomic index and write each outcome
/// into the slot matching its input position, so the returned vector is
/// in item order — bit-identical to mapping serially — no matter which
/// worker finished first. `threads` is clamped to `1..=items.len()`.
/// This is the work-stealing pool behind [`run_kernels`] and the fuzz
/// campaign driver.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("result slot lock") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot lock").expect("worker filled the slot"))
        .collect()
}

/// Runs every job, fanning them across `threads` scoped worker threads
/// via [`parallel_map`]; results are in job order.
pub fn run_kernels(jobs: &[KernelJob], threads: usize) -> Vec<Result<KernelResult, HarnessError>> {
    parallel_map(jobs, threads, |(case, config)| run_kernel(case, config))
}

/// Jobs per lockstep batch in [`run_kernel_batch`]: each job contributes
/// two instances (baseline and accelerated leg), so a full chunk steps
/// 32 systems together — enough to amortize scheduling and share
/// translations, small enough to keep the parallel workers loaded.
const BATCH_JOBS: usize = 16;

/// Runs every job through the lockstep batch scheduler
/// ([`crate::batch::run_batch`]): jobs are grouped into chunks, each
/// chunk's baseline and accelerated legs become one batch of systems
/// advanced together, and chunks fan out across `threads` workers.
///
/// Results — values, statistics, and error priority (compile, then
/// baseline, then dyser; run errors before mismatches per leg) — are
/// identical to [`run_kernels`]. Compiled-backend legs running the same
/// program text share one translated-block cache per chunk. When
/// process-wide tracing is enabled ([`set_trace_capacity`]) the jobs
/// fall back to the serial harness, which owns the per-run ring-buffer
/// plumbing.
pub fn run_kernel_batch(
    jobs: &[KernelJob],
    threads: usize,
) -> Vec<Result<KernelResult, HarnessError>> {
    if TRACE_CAP.load(Ordering::Relaxed) > 0 {
        return run_kernels(jobs, threads);
    }
    let chunks: Vec<&[KernelJob]> = jobs.chunks(BATCH_JOBS).collect();
    parallel_map(&chunks, threads, |chunk| run_kernel_batch_chunk(chunk))
        .into_iter()
        .flatten()
        .collect()
}

/// Simulates one chunk of jobs as a single lockstep batch.
fn run_kernel_batch_chunk(jobs: &[KernelJob]) -> Vec<Result<KernelResult, HarnessError>> {
    use std::hash::{Hash, Hasher};

    let compiled: Vec<Result<Arc<CompiledProgram>, HarnessError>> = jobs
        .iter()
        .map(|(case, config)| compile_cached(&case.function, &config.compiler).map_err(Into::into))
        .collect();

    const LEGS: [&str; 2] = ["baseline", "dyser"];
    let mut items: Vec<BatchItem> = Vec::new();
    let mut lanes: Vec<(usize, usize)> = Vec::new(); // (job index, leg index)
    let mut leg_results: Vec<[Option<Result<RunStats, HarnessError>>; 2]> =
        jobs.iter().map(|_| [None, None]).collect();

    for (j, ((case, config), compiled)) in jobs.iter().zip(&compiled).enumerate() {
        let Ok(compiled) = compiled else { continue };
        let engine = if config.stepped {
            BatchEngine::Stepped
        } else {
            match backend_override().unwrap_or(config.backend) {
                Backend::Interpreted => BatchEngine::Interpreted,
                Backend::Compiled => BatchEngine::Compiled,
            }
        };
        for (leg, program) in [&compiled.baseline, &compiled.accelerated].into_iter().enumerate() {
            let built = (|| -> Result<System, SysError> {
                let mut sys = System::try_new(config.system.clone())?;
                sys.load_program(program)?;
                for (addr, words) in &case.init {
                    sys.memory_mut().write_u64_slice(*addr, words);
                }
                sys.set_args(&case.args);
                Ok(sys)
            })();
            match built {
                Err(source) => {
                    leg_results[j][leg] =
                        Some(Err(HarnessError::Run { which: LEGS[leg], source }));
                }
                Ok(system) => {
                    // Legs with identical program text and L1I line size
                    // (same compiled Arc — alive for this whole chunk —
                    // plus the leg selecting baseline vs accelerated)
                    // share one translated-block cache.
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    (Arc::as_ptr(compiled) as usize, leg, config.system.mem.l1i.line_bytes)
                        .hash(&mut h);
                    items.push(BatchItem {
                        system,
                        max_cycles: config.max_cycles,
                        engine,
                        share_code: Some(h.finish()),
                    });
                    lanes.push((j, leg));
                }
            }
        }
    }

    let report = run_batch(items);
    for (outcome, &(j, leg)) in report.outcomes.iter().zip(&lanes) {
        let which = LEGS[leg];
        let (case, _) = &jobs[j];
        leg_results[j][leg] = Some(match &outcome.result {
            Err(source) => Err(HarnessError::Run { which, source: source.clone() }),
            Ok(stats) => {
                credit_run(stats, &outcome.system.speed_stats());
                verify_expected(&outcome.system, &case.expected, which).map(|()| stats.clone())
            }
        });
    }
    // The shared caches' counters belong to the whole chunk; credit them
    // once so `speed_stat_totals` keeps covering every block dispatch.
    for (slot, count) in SPEED_TOTALS[2..].iter().zip([
        report.shared_blocks.hits,
        report.shared_blocks.misses,
        report.shared_blocks.invalidations,
    ]) {
        slot.fetch_add(count, Ordering::Relaxed);
    }

    jobs.iter()
        .zip(compiled)
        .zip(leg_results)
        .map(|(((case, _), compiled), [base, dyser])| {
            let compiled = compiled?;
            let base_stats = base.expect("baseline leg resolved")?;
            let dyser_stats = dyser.expect("dyser leg resolved")?;
            let CompiledProgram { baseline, accelerated, regions, accelerated_any, .. } = &*compiled;
            let speedup = base_stats.cycles as f64 / dyser_stats.cycles.max(1) as f64;
            Ok(KernelResult {
                name: case.name.clone(),
                speedup,
                accelerated_any: *accelerated_any,
                regions: regions.clone(),
                code_sizes: (baseline.len(), accelerated.len()),
                baseline: base_stats,
                dyser: dyser_stats,
            })
        })
        .collect()
}

/// A whole emulated process: program text for both legs (hand-assembled,
/// DySER-accelerated inner regions in the `accelerated` leg), the process
/// inputs (argv, envp, stdin, initial memory), and the reference outputs
/// — captured stdout bytes and the exit code, plus optional memory
/// expectations.
#[derive(Debug, Clone)]
pub struct ProgramCase {
    /// Display name (`p1`..`p3` in the experiment suite).
    pub name: String,
    /// Scalar-baseline program.
    pub baseline: Program,
    /// DySER-accelerated program.
    pub accelerated: Program,
    /// Process arguments (argv\[0\] included).
    pub argv: Vec<String>,
    /// Process environment strings (`KEY=value`).
    pub envp: Vec<String>,
    /// Bytes served to `read` on fd 0.
    pub stdin: Vec<u8>,
    /// Initial memory contents: `(address, words)`.
    pub init: Vec<(u64, Vec<u64>)>,
    /// Expected memory after the run: `(address, words)`.
    pub expected: Vec<(u64, Vec<u64>)>,
    /// Reference stdout, compared byte-for-byte.
    pub expected_stdout: Vec<u8>,
    /// Reference exit code.
    pub expected_exit: u64,
}

/// Everything one whole-program run produces: the (backend-bit-identical)
/// run statistics and the process outputs.
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// The run's statistics.
    pub stats: RunStats,
    /// Captured stdout bytes.
    pub stdout: Vec<u8>,
    /// Captured stderr bytes.
    pub stderr: Vec<u8>,
    /// The `exit` syscall's code (0 if the program halted without one).
    pub exit_code: u64,
}

/// Runs one leg of a [`ProgramCase`] as an emulated process — startup
/// stack, proxy kernel, trap-and-emulate syscalls — and verifies its
/// memory, stdout, and exit code against the references.
///
/// The backend follows `config` exactly like [`run_program`]; stats are
/// credited to the process-wide accounting.
///
/// # Errors
///
/// Fails on core faults, timeouts, unknown syscalls, or any output
/// mismatch (memory, stdout, or exit code).
pub fn run_whole_program(
    which: &'static str,
    program: &Program,
    case: &ProgramCase,
    config: &RunConfig,
) -> Result<ProgramRun, HarnessError> {
    let as_run = |source| HarnessError::Run { which, source };
    let mut sys = System::try_new(config.system.clone()).map_err(as_run)?;
    sys.load_program(program).map_err(as_run)?;
    for (addr, words) in &case.init {
        sys.memory_mut().write_u64_slice(*addr, words);
    }
    let argv: Vec<&str> = case.argv.iter().map(String::as_str).collect();
    let envp: Vec<&str> = case.envp.iter().map(String::as_str).collect();
    sys.setup_process(&argv, &envp, &case.stdin);
    let outcome = if config.stepped {
        sys.run_stepped(config.max_cycles)
    } else {
        match backend_override().unwrap_or(config.backend) {
            Backend::Interpreted => sys.run(config.max_cycles),
            Backend::Compiled => sys.run_compiled(config.max_cycles),
        }
    };
    let stats = outcome.map_err(as_run)?;
    credit_run(&stats, &sys.speed_stats());
    verify_expected(&sys, &case.expected, which)?;
    let got_exit = sys.kernel().exit_code().unwrap_or(0);
    if got_exit != case.expected_exit {
        return Err(HarnessError::ExitMismatch {
            which,
            expected: case.expected_exit,
            got: got_exit,
        });
    }
    if sys.kernel().stdout() != case.expected_stdout.as_slice() {
        return Err(HarnessError::StdoutMismatch {
            which,
            expected: case.expected_stdout.clone(),
            got: sys.kernel().stdout().to_vec(),
        });
    }
    Ok(ProgramRun {
        stats,
        stdout: sys.kernel().stdout().to_vec(),
        stderr: sys.kernel().stderr().to_vec(),
        exit_code: got_exit,
    })
}

/// Runs both legs of a [`ProgramCase`] (scoped threads, like
/// [`run_kernel`]) and reports the comparison in the same
/// [`KernelResult`] shape the experiment tables consume.
///
/// # Errors
///
/// Baseline errors take priority over accelerated-leg errors.
pub fn run_program_case(
    case: &ProgramCase,
    config: &RunConfig,
) -> Result<KernelResult, HarnessError> {
    let (base, dyser) = thread::scope(|s| {
        let b = s.spawn(|| run_whole_program("baseline", &case.baseline, case, config));
        let d = run_whole_program("dyser", &case.accelerated, case, config);
        (b.join().expect("baseline run thread"), d)
    });
    let base = base?;
    let dyser = dyser?;
    let speedup = base.stats.cycles as f64 / dyser.stats.cycles.max(1) as f64;
    Ok(KernelResult {
        name: case.name.clone(),
        speedup,
        accelerated_any: true,
        regions: Vec::new(),
        code_sizes: (case.baseline.len(), case.accelerated.len()),
        baseline: base.stats,
        dyser: dyser.stats,
    })
}

/// Checks every expected output buffer against the system's memory,
/// mirroring the verification in [`run_program_traced`].
fn verify_expected(
    sys: &System,
    expected: &[(u64, Vec<u64>)],
    which: &'static str,
) -> Result<(), HarnessError> {
    for (addr, words) in expected {
        for (i, want) in words.iter().enumerate() {
            let a = addr + 8 * i as u64;
            let got = sys.memory().read_u64(a);
            if got != *want {
                return Err(HarnessError::Mismatch { which, addr: a, expected: *want, got });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_compiler::{BinOp, CmpOp, FunctionBuilder, Type};

    /// c[i] = (a[i] + b[i]) * a[i] over f64, n elements.
    fn case(n: usize) -> KernelCase {
        let mut b = FunctionBuilder::new(
            "fma_ish",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let (a, bb, c, nn) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let va = b.load(pa, Type::F64);
        let vb = b.load(pb, Type::F64);
        let sum = b.bin(BinOp::Fadd, va, vb);
        let prod = b.bin(BinOp::Fmul, sum, va);
        let pc = b.gep(c, i, 8);
        b.store(prod, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let cond = b.cmp(CmpOp::Slt, i2, nn);
        b.cond_br(cond, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.build().unwrap();

        let (pa, pb, pc) = (0x20_0000u64, 0x30_0000u64, 0x40_0000u64);
        let av: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 + 1.0).collect();
        let bv: Vec<f64> = (0..n).map(|i| (i as f64) * -0.25 + 2.0).collect();
        let cv: Vec<u64> =
            av.iter().zip(&bv).map(|(x, y)| ((x + y) * x).to_bits()).collect();
        KernelCase {
            name: "fma_ish".into(),
            function: f,
            args: vec![pa, pb, pc, n as u64],
            init: vec![
                (pa, av.iter().map(|x| x.to_bits()).collect()),
                (pb, bv.iter().map(|x| x.to_bits()).collect()),
            ],
            expected: vec![(pc, cv)],
        }
    }

    #[test]
    fn baseline_and_dyser_both_verify() {
        let result = run_kernel(&case(37), &RunConfig::default()).expect("kernel verifies");
        assert!(result.accelerated_any, "{:?}", result.regions);
        assert!(result.baseline.cycles > 0);
        assert!(result.dyser.cycles > 0);
        assert!(
            result.speedup > 1.0,
            "fp kernel should speed up, got {:.2} (base {} vs dyser {})",
            result.speedup,
            result.baseline.cycles,
            result.dyser.cycles
        );
        // A 2-op kernel trades its compute instructions for interface
        // instructions roughly one-for-one; large reductions show up on
        // compute-heavy kernels (experiment E5).
        assert!(
            result.instr_reduction() > -0.5,
            "interface overhead out of bounds: {:.2}",
            result.instr_reduction()
        );
        assert!(result.dyser.fabric.fu_fires() > 0);
        assert_eq!(result.baseline.fabric.fu_fires(), 0);
    }

    #[test]
    fn odd_and_even_trip_counts_verify() {
        // Exercises the unroll epilogue paths end to end.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31] {
            let r = run_kernel(&case(n), &RunConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(r.baseline.halted && r.dyser.halted);
        }
    }

    #[test]
    fn no_unroll_still_verifies() {
        let mut rc = RunConfig::default();
        rc.compiler.unroll_factor = 1;
        let r = run_kernel(&case(23), &rc).unwrap();
        assert!(r.accelerated_any);
    }

    #[test]
    fn lag_disabled_still_verifies() {
        let mut rc = RunConfig::default();
        rc.compiler.codegen.lag_stores = false;
        let r = run_kernel(&case(23), &rc).unwrap();
        assert!(r.accelerated_any);
    }
}
