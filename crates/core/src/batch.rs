//! Batched lockstep execution: many independent [`System`] instances
//! advanced together by one scheduler.
//!
//! The evaluation workloads — design-space sweeps, fuzz campaigns,
//! concurrent serve jobs — run thousands of *independent* simulations
//! whose per-instance dispatch cost (thread spawns, cold caches, one
//! run-loop per point) dominates short runs. [`run_batch`] amortizes
//! that cost by driving N instances in lockstep:
//!
//! * **Structure-of-arrays hot state.** The scheduler's per-instance
//!   scalars — remaining budget, skip horizon, accrued (owed) stall
//!   cycles, deferred fabric ticks — live in contiguous arrays indexed
//!   by instance. A lockstep round scans only these arrays; an instance
//!   whose horizon covers the round is advanced by pure arithmetic on
//!   its hot slots without touching its cold [`System`] state at all.
//! * **Batch-wide skip horizons.** Each round advances every live
//!   instance by the same `delta` cycles, chosen as the minimum live
//!   skip horizon but never below [`QUANTUM`] — so quiescent instances
//!   fast-forward in bulk while busy ones consume their slice through
//!   their engine. Cycles accrued against a horizon are *paid lazily*
//!   ([`MachineState::fast_forward`]) just before the instance next
//!   needs its cold state.
//! * **Shared translated-block caches.** Instances executing the same
//!   program text (equal [`BatchItem::share_code`] keys) on the compiled
//!   backend share one [`BlockCache`], so the batch translates each hot
//!   block once instead of once per instance. Block-cache counters are
//!   [`SpeedStats`](crate::system::SpeedStats) — deliberately outside
//!   [`RunStats`] — so sharing affects hit rates only, never results.
//!
//! **Bit-identity contract.** For every instance the outcome — result,
//! [`RunStats`], memory image, register file — is byte-identical to
//! running that instance alone through [`System::run`],
//! [`System::run_stepped`], or [`System::run_compiled`]. This holds
//! because every engine's bulk advance is additive (`advance(a);
//! advance(b)` ≡ `advance(a + b)`; see [`MachineState`]), so slicing an
//! instance's budget at the scheduler's round boundaries is
//! unobservable. Timeouts are exact even when a lockstep round
//! overshoots an individual budget: each instance's slice is clamped to
//! its own remaining cycles, so `SysError::Timeout` reports precisely
//! `start_cycles + max_cycles`, as the serial engines do.
//!
//! **Retirement.** An instance leaves the lockstep the moment it halts,
//! faults, or exhausts its budget; later rounds never touch it. Retired
//! compiled instances settle their deferred fabric ticks first, so the
//! fabric statistics match the serial path on every exit.

use dyser_compiled::{BlockCache, BlockCacheStats};

use crate::system::{RunStats, SysError, System};

/// Minimum cycles a lockstep round advances every live instance.
///
/// Rounds cost one scan of the hot arrays plus one engine slice per
/// busy instance; a floor keeps that overhead amortized when some
/// instance is active (horizon 0) while others are deep in counted
/// stalls. Slices compose bit-identically at any boundary, so the value
/// trades scheduling granularity against loop overhead only.
pub const QUANTUM: u64 = 1024;

/// Which engine advances an instance (mirrors the three `System::run*`
/// entry points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchEngine {
    /// The fast-forwarding interpreted path of [`System::run`].
    Interpreted,
    /// The per-cycle reference path of [`System::run_stepped`].
    Stepped,
    /// The translated-block path of [`System::run_compiled`].
    Compiled,
}

/// One instance submitted to [`run_batch`].
#[derive(Debug)]
pub struct BatchItem {
    /// The machine to advance (program loaded, arguments set).
    pub system: System,
    /// Cycle budget, as passed to the serial `run*` entry points.
    pub max_cycles: u64,
    /// Engine selection for this instance.
    pub engine: BatchEngine,
    /// Compiled-backend instances with equal keys share one translated-
    /// block cache. Callers must key on the program text *and* the L1I
    /// line size (block translation bakes `line_bytes` into its fetch
    /// plan); `None` keeps the instance on its private cache.
    pub share_code: Option<u64>,
}

impl BatchItem {
    /// A batch item with a private block cache.
    pub fn new(system: System, max_cycles: u64, engine: BatchEngine) -> Self {
        BatchItem { system, max_cycles, engine, share_code: None }
    }
}

/// One instance's outcome: the system (for memory/register inspection)
/// and the result the serial entry point would have returned.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The machine, in exactly the state the serial run would leave it.
    pub system: System,
    /// `Ok(stats)` on halt; `SysError::Timeout` / core faults otherwise.
    pub result: Result<RunStats, SysError>,
}

/// Everything [`run_batch`] produces.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-instance outcomes, in submission order.
    pub outcomes: Vec<BatchOutcome>,
    /// Combined counters of the *shared* block caches (per-instance
    /// caches keep reporting through `System::speed_stats`).
    pub shared_blocks: BlockCacheStats,
}

/// Per-instance scheduler state, hot fields split into arrays by the
/// driver (see [`run_batch`]).
struct Lane {
    /// Engine after resolving tracing (a traced compiled instance runs
    /// interpreted, exactly as `System::run_compiled` would).
    engine: BatchEngine,
    tracing: bool,
    /// Index into the shared-cache table, `usize::MAX` for private.
    group: usize,
    /// Fabric ticks already paid (compiled deferral; see
    /// [`MachineState::advance_compiled`]).
    fabric_ticks: u64,
}

/// Advances every instance to completion in lockstep rounds.
///
/// Results are bit-identical to running each instance serially through
/// its engine (see the module docs for why). Instances never share
/// architectural state — only scheduler bookkeeping and, when
/// [`BatchItem::share_code`] allows, translated program text.
pub fn run_batch(items: Vec<BatchItem>) -> BatchReport {
    let n = items.len();
    let mut systems = Vec::with_capacity(n);
    let mut lanes = Vec::with_capacity(n);
    // Hot per-instance scalars, contiguous and index-aligned: the round
    // scan reads only these until an instance needs its cold state.
    let mut remaining = Vec::with_capacity(n);
    let mut horizon = vec![0u64; n];
    let mut owed = vec![0u64; n];
    let mut results: Vec<Option<Result<RunStats, SysError>>> = Vec::with_capacity(n);

    // Resolve shared-cache groups: equal keys map to one cache.
    let mut shared: Vec<BlockCache> = Vec::new();
    let mut group_keys: Vec<u64> = Vec::new();

    for mut item in items {
        let (state, _, _, tracing) = item.system.batch_parts();
        let engine = match item.engine {
            // A traced instance needs per-event timestamps: the compiled
            // entry point falls back to the interpreted engine, and both
            // interpreted engines force the per-cycle path via `tracing`.
            BatchEngine::Compiled if tracing => BatchEngine::Interpreted,
            e => e,
        };
        let group = match (engine, item.share_code) {
            (BatchEngine::Compiled, Some(key)) => {
                match group_keys.iter().position(|&k| k == key) {
                    Some(g) => g,
                    None => {
                        group_keys.push(key);
                        shared.push(BlockCache::new());
                        shared.len() - 1
                    }
                }
            }
            _ => usize::MAX,
        };
        let fabric_ticks = state.cpu.stats().cycles;
        lanes.push(Lane { engine, tracing, group, fabric_ticks });
        remaining.push(item.max_cycles);
        results.push(None);
        systems.push(item.system);
    }

    let mut live: Vec<usize> = (0..n).collect();
    for &i in &live {
        horizon[i] = refresh_horizon(&mut systems[i], &lanes[i]);
    }
    // An instance submitted already-halted, or with a zero budget on an
    // unhalted program, retires before the first round — same check the
    // serial entry points make on entry.
    retire_initial(&mut systems, &lanes, &remaining, &mut results, &mut live);

    while !live.is_empty() {
        // The lockstep quantum: every live instance advances `delta`
        // cycles this round (clamped to its own remaining budget).
        // Taking the minimum live horizon lets fully-stalled rounds
        // fast-forward arbitrarily far; the QUANTUM floor keeps rounds
        // coarse when some instance is actively executing.
        let min_h = live.iter().map(|&i| horizon[i]).min().unwrap_or(0);
        let delta = min_h.max(QUANTUM);

        live.retain(|&i| {
            let step = delta.min(remaining[i]);
            if horizon[i] >= step {
                // Hot-array-only fast-forward: the cycles are pure
                // counted-stall drain, accrued now and paid lazily.
                owed[i] += step;
                horizon[i] -= step;
                remaining[i] -= step;
                if remaining[i] > 0 {
                    return true;
                }
                // Budget exhausted mid-stall: pay the accrual and time
                // out at exactly the serial cycle count.
                settle_owed(&mut systems[i], &lanes[i], &mut owed[i]);
                retire(&mut systems[i], &lanes[i], &mut results[i]);
                return false;
            }
            settle_owed(&mut systems[i], &lanes[i], &mut owed[i]);
            let lane = &mut lanes[i];
            let (state, own_blocks, line_bytes, tracing) = systems[i].batch_parts();
            let before = state.cpu.stats().cycles;
            let sliced = match lane.engine {
                BatchEngine::Interpreted => state.advance_fast(step, tracing),
                BatchEngine::Stepped => state.advance_stepped(step, tracing),
                BatchEngine::Compiled => {
                    let blocks =
                        if lane.group == usize::MAX { own_blocks } else { &mut shared[lane.group] };
                    state.advance_compiled(step, blocks, line_bytes, &mut lane.fabric_ticks)
                }
            };
            remaining[i] -= state.cpu.stats().cycles - before;
            match sliced {
                Err(e) => {
                    let faulted = matches!(&e, SysError::Core(_));
                    if lane.engine == BatchEngine::Compiled {
                        state.settle_fabric(lane.fabric_ticks, faulted);
                    }
                    results[i] = Some(Err(e));
                    false
                }
                Ok(()) if state.cpu.halted() || remaining[i] == 0 => {
                    // A pending trap with an exhausted budget is *not*
                    // serviced — same timeout decision the serial
                    // drivers make, at the identical cycle.
                    retire(&mut systems[i], &lanes[i], &mut results[i]);
                    false
                }
                Ok(()) => {
                    // Every engine's slice stops at a trap on the exact
                    // retire cycle; service it at the round boundary
                    // (zero cycles) so the lane resumes into the same
                    // machine the serial driver would. The syscall stall
                    // then shows up in the refreshed horizon.
                    if state.cpu.pending_syscall().is_some() {
                        match state.service_syscall() {
                            Err(e) => {
                                if lane.engine == BatchEngine::Compiled {
                                    state.settle_fabric(lane.fabric_ticks, false);
                                }
                                results[i] = Some(Err(e));
                                return false;
                            }
                            Ok(_) => {
                                if state.cpu.halted() {
                                    retire(&mut systems[i], &lanes[i], &mut results[i]);
                                    return false;
                                }
                            }
                        }
                    }
                    horizon[i] = refresh_horizon(&mut systems[i], &lanes[i]);
                    true
                }
            }
        });
    }

    let shared_blocks = shared
        .iter()
        .fold(BlockCacheStats::default(), |acc, c| {
            let s = c.stats();
            BlockCacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                invalidations: acc.invalidations + s.invalidations,
            }
        });
    let outcomes = systems
        .into_iter()
        .zip(results)
        .map(|(system, result)| BatchOutcome {
            system,
            result: result.expect("every lane retires with a result"),
        })
        .collect();
    BatchReport { outcomes, shared_blocks }
}

/// The instance's current skip horizon under its engine's rules: the
/// interpreted fast path skips whenever the core is draining a counted
/// stall; the compiled path additionally requires pending micro-state
/// (mirroring its driver loop); tracing and the stepped engine never
/// skip.
fn refresh_horizon(system: &mut System, lane: &Lane) -> u64 {
    let (state, _, _, _) = system.batch_parts();
    match lane.engine {
        _ if lane.tracing => 0,
        BatchEngine::Stepped => 0,
        BatchEngine::Interpreted => state.cpu.skip_horizon(),
        BatchEngine::Compiled => {
            if state.cpu.has_pending() {
                state.cpu.skip_horizon()
            } else {
                0
            }
        }
    }
}

/// Pays the accrued stall-drain cycles: core always; fabric immediately
/// on the interpreted path (its skip advances both together), deferred
/// on the compiled path (owed fabric ticks are tracked by
/// `lane.fabric_ticks` and settled at retirement or the next
/// coprocessor poll).
fn settle_owed(system: &mut System, lane: &Lane, owed: &mut u64) {
    if *owed == 0 {
        return;
    }
    let (state, _, _, _) = system.batch_parts();
    state.fast_forward(*owed, lane.engine != BatchEngine::Compiled);
    *owed = 0;
}

/// Finishes an instance exactly as its serial entry point would: settle
/// deferred fabric ticks (compiled), then report halt stats or a
/// `Timeout` carrying the precise cycle count.
fn retire(system: &mut System, lane: &Lane, result: &mut Option<Result<RunStats, SysError>>) {
    let (state, _, _, _) = system.batch_parts();
    if lane.engine == BatchEngine::Compiled {
        state.settle_fabric(lane.fabric_ticks, false);
    }
    *result = Some(if state.cpu.halted() {
        Ok(state.run_stats())
    } else {
        Err(SysError::Timeout { cycles: state.cpu.stats().cycles })
    });
}

/// Retires instances that are already finished on entry: halted before
/// the first round, or submitted with a zero budget.
fn retire_initial(
    systems: &mut [System],
    lanes: &[Lane],
    remaining: &[u64],
    results: &mut [Option<Result<RunStats, SysError>>],
    live: &mut Vec<usize>,
) {
    live.retain(|&i| {
        let (state, _, _, _) = systems[i].batch_parts();
        if state.cpu.halted() || remaining[i] == 0 {
            retire(&mut systems[i], &lanes[i], &mut results[i]);
            false
        } else {
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use dyser_isa::{regs, AluOp, Assembler, ICond, Instr, Op2};

    fn spin_then_halt(iters: u16) -> Vec<u32> {
        let mut asm = Assembler::new();
        asm.push(Instr::mov_imm(regs::O0, iters as i16));
        asm.label("loop");
        asm.push(Instr::alu(AluOp::SubCc, regs::O0, regs::O0, Op2::Imm(1)));
        asm.branch(ICond::Ne, "loop");
        asm.push(Instr::Nop);
        asm.push(Instr::Halt);
        asm.assemble().unwrap()
    }

    fn fresh(words: &[u32]) -> System {
        let mut sys = System::new(SystemConfig::default());
        sys.load_raw(0x10000, words);
        sys
    }

    #[test]
    fn batch_matches_serial_for_every_engine() {
        let words = spin_then_halt(50);
        for engine in [BatchEngine::Interpreted, BatchEngine::Stepped, BatchEngine::Compiled] {
            let mut serial = fresh(&words);
            let expected = match engine {
                BatchEngine::Interpreted => serial.run(100_000),
                BatchEngine::Stepped => serial.run_stepped(100_000),
                BatchEngine::Compiled => serial.run_compiled(100_000),
            }
            .unwrap();
            let report =
                run_batch(vec![BatchItem::new(fresh(&words), 100_000, engine)]);
            let got = report.outcomes.into_iter().next().unwrap();
            assert_eq!(got.result.unwrap(), expected, "{engine:?} diverged");
        }
    }

    #[test]
    fn ragged_budgets_time_out_exactly() {
        let words = spin_then_halt(4000);
        let budgets = [37u64, 100, 64, 1];
        let items = budgets
            .iter()
            .map(|&b| BatchItem::new(fresh(&words), b, BatchEngine::Interpreted))
            .collect();
        let report = run_batch(items);
        for (outcome, &budget) in report.outcomes.iter().zip(&budgets) {
            match &outcome.result {
                Err(SysError::Timeout { cycles }) => {
                    assert_eq!(*cycles, budget, "timeout must charge the exact budget")
                }
                other => panic!("expected timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn shared_cache_translates_once() {
        let words = spin_then_halt(50);
        let items = (0..4)
            .map(|_| BatchItem {
                system: fresh(&words),
                max_cycles: 100_000,
                engine: BatchEngine::Compiled,
                share_code: Some(1),
            })
            .collect();
        let report = run_batch(items);
        assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
        let s = report.shared_blocks;
        assert!(s.hits > 0, "later instances must reuse translations: {s:?}");
        // All four instances ran identical text: only the first pays the
        // translation misses (plus conflict/loop-entry re-dispatches).
        let solo = run_batch(vec![BatchItem {
            system: fresh(&words),
            max_cycles: 100_000,
            engine: BatchEngine::Compiled,
            share_code: Some(1),
        }]);
        assert_eq!(s.misses, solo.shared_blocks.misses, "misses must not scale with batch size");
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_batch(Vec::new());
        assert!(report.outcomes.is_empty());
    }

    /// Interleaves compute with `write` and `exit` traps so every engine
    /// crosses syscall service points mid-batch.
    fn trap_program() -> Vec<u32> {
        use dyser_sparc::syscall::{SYS_EXIT, SYS_WRITE};
        let mut asm = Assembler::new();
        // Spin a little so slices and traps interleave.
        asm.push(Instr::mov_imm(regs::O3, 30));
        asm.label("loop");
        asm.push(Instr::alu(AluOp::SubCc, regs::O3, regs::O3, Op2::Imm(1)));
        asm.branch(ICond::Ne, "loop");
        asm.push(Instr::Nop);
        // write(1, 0xF00, 3)
        asm.push(Instr::mov_imm(regs::O0, 1));
        asm.push(Instr::mov_imm(regs::O1, 0xF00));
        asm.push(Instr::mov_imm(regs::O2, 3));
        asm.push(Instr::Trap { code: SYS_WRITE });
        // exit(7)
        asm.push(Instr::mov_imm(regs::O0, 7));
        asm.push(Instr::Trap { code: SYS_EXIT });
        asm.push(Instr::Halt);
        asm.assemble().unwrap()
    }

    fn fresh_trap() -> System {
        let mut sys = fresh(&trap_program());
        sys.memory_mut().write_bytes(0xF00, b"ok\n");
        sys
    }

    #[test]
    fn batch_services_syscalls_identically_to_serial() {
        let mut serial = fresh_trap();
        let expected = serial.run(100_000).unwrap();
        assert_eq!(serial.kernel().stdout(), b"ok\n");
        assert_eq!(serial.kernel().exit_code(), Some(7));
        for engine in [BatchEngine::Interpreted, BatchEngine::Stepped, BatchEngine::Compiled] {
            let report = run_batch(vec![BatchItem::new(fresh_trap(), 100_000, engine)]);
            let got = report.outcomes.into_iter().next().unwrap();
            assert_eq!(got.result.unwrap(), expected, "{engine:?} diverged");
            assert_eq!(got.system.kernel().stdout(), b"ok\n", "{engine:?} stdout");
            assert_eq!(got.system.kernel().exit_code(), Some(7), "{engine:?} exit");
        }
    }

    #[test]
    fn batch_trap_timeout_matches_serial() {
        // Budgets chosen to land before, on, and after the trap cycle:
        // every one must report the exact same outcome as the serial run.
        let mut probe = fresh_trap();
        let full = probe.run(100_000).unwrap().cycles;
        for budget in 1..=full {
            let mut serial = fresh_trap();
            let expected = serial.run(budget);
            let report =
                run_batch(vec![BatchItem::new(fresh_trap(), budget, BatchEngine::Compiled)]);
            let got = report.outcomes.into_iter().next().unwrap().result;
            match (expected, got) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "budget {budget}"),
                (Err(SysError::Timeout { cycles: a }), Err(SysError::Timeout { cycles: b })) => {
                    assert_eq!(a, b, "budget {budget}")
                }
                (e, g) => panic!("budget {budget}: serial {e:?} vs batch {g:?}"),
            }
        }
    }
}
