//! Human-readable reports over run results: the side-by-side comparison
//! and stall breakdown the examples and the `repro` harness print.

use std::fmt::Write as _;

use dyser_energy::EnergyModel;
use dyser_isa::InstrClass;
use dyser_sparc::StallCause;

use crate::harness::KernelResult;
use crate::system::RunStats;

/// Renders a side-by-side comparison of the baseline and DySER runs.
pub fn comparison(result: &KernelResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "kernel: {}", result.name);
    let _ = writeln!(
        s,
        "{:<22} {:>12} {:>12}",
        "", "OpenSPARC", "SPARC-DySER"
    );
    let row = |s: &mut String, label: &str, a: String, b: String| {
        let _ = writeln!(s, "{label:<22} {a:>12} {b:>12}");
    };
    row(
        &mut s,
        "cycles",
        result.baseline.cycles.to_string(),
        result.dyser.cycles.to_string(),
    );
    row(
        &mut s,
        "instructions",
        result.baseline.core.instructions.to_string(),
        result.dyser.core.instructions.to_string(),
    );
    row(
        &mut s,
        "CPI",
        format!("{:.2}", result.baseline.core.cpi()),
        format!("{:.2}", result.dyser.core.cpi()),
    );
    row(
        &mut s,
        "fabric op firings",
        result.baseline.fabric.fu_fires().to_string(),
        result.dyser.fabric.fu_fires().to_string(),
    );
    let model = EnergyModel::default();
    let (eb, ed) = (result.baseline.energy(&model), result.dyser.energy(&model));
    row(
        &mut s,
        "energy (uJ)",
        format!("{:.1}", eb.total_nj / 1000.0),
        format!("{:.1}", ed.total_nj / 1000.0),
    );
    let _ = writeln!(
        s,
        "speedup {:.2}x | energy {:.2}x | EDP {:.2}x",
        result.speedup,
        eb.total_nj / ed.total_nj,
        eb.edp / ed.edp
    );
    s
}

/// Renders the instruction-class mix of one run.
pub fn instruction_mix(stats: &RunStats) -> String {
    let mut s = String::new();
    for class in InstrClass::ALL {
        let count = stats.core.class_count(class);
        if count > 0 {
            let _ = writeln!(
                s,
                "{:<12} {:>10} ({:>5.1}%)",
                class.label(),
                count,
                100.0 * count as f64 / stats.core.instructions.max(1) as f64
            );
        }
    }
    s
}

/// Renders the stall breakdown of one run (non-zero causes only).
pub fn stall_breakdown(stats: &RunStats) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "cycles {} = instructions {} + stalls {}",
        stats.cycles,
        stats.core.instructions,
        stats.core.total_stalls()
    );
    for cause in StallCause::ALL {
        let count = stats.core.stall_count(cause);
        if count > 0 {
            let _ = writeln!(
                s,
                "{:<14} {:>10} ({:>5.1}% of cycles)",
                cause.label(),
                count,
                100.0 * count as f64 / stats.cycles.max(1) as f64
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_kernel, KernelCase, RunConfig};
    use dyser_compiler::{BinOp, CmpOp, FunctionBuilder, Type};

    fn tiny_result() -> KernelResult {
        let mut b = FunctionBuilder::new(
            "r",
            &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let (a, c, n) = (b.param(0), b.param(1), b.param(2));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::F64);
        let y = b.bin(BinOp::Fmul, x, x);
        let z = b.bin(BinOp::Fadd, y, x);
        let pc = b.gep(c, i, 8);
        b.store(z, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let cond = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(cond, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.build().unwrap();
        let vals: Vec<f64> = (0..16).map(|k| 0.5 + k as f64 * 0.25).collect();
        let out: Vec<u64> = vals.iter().map(|&x| (x * x + x).to_bits()).collect();
        let case = KernelCase {
            name: "r".into(),
            function: f,
            args: vec![0x20_0000, 0x40_0000, 16],
            init: vec![(0x20_0000, vals.iter().map(|x| x.to_bits()).collect())],
            expected: vec![(0x40_0000, out)],
        };
        run_kernel(&case, &RunConfig::default()).unwrap()
    }

    #[test]
    fn comparison_mentions_both_machines() {
        let r = tiny_result();
        let text = comparison(&r);
        assert!(text.contains("OpenSPARC"));
        assert!(text.contains("SPARC-DySER"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn mix_percentages_cover_instructions() {
        let r = tiny_result();
        let text = instruction_mix(&r.baseline);
        assert!(text.contains("fp"));
        assert!(text.contains('%'));
    }

    #[test]
    fn stall_identity_printed() {
        let r = tiny_result();
        let text = stall_breakdown(&r.dyser);
        assert!(text.contains("= instructions"));
    }
}
