//! The integrated SPARC-DySER machine.

use std::fmt;

use dyser_compiled::{run_block, BlockCache, BlockCacheStats};
use dyser_compiler::Program;
use dyser_fabric::{ConfigError, Fabric, FabricConfig, FabricConfigError, FabricGeometry, FuKind};
use dyser_mem::{Hierarchy, MemConfig, MemStats, Memory};
use dyser_sparc::bus::{read_sized, write_sized};
use dyser_sparc::coproc::CoprocError;
use dyser_sparc::syscall::{write_startup_stack, SysOutcome, SyscallHandler};
use dyser_sparc::{Bus, Coproc, CoreError, CoreStats, CycleAccount, Pipeline, ProxyKernel};
use dyser_trace::TraceEvent;

/// Base of the process-startup image (argc/argv/envp) that
/// [`System::setup_process`] writes — above the workloads' data buffers,
/// below the heap.
pub const STACK_BASE: u64 = 0x60_0000;

/// Initial program break of an emulated process: `brk` grows the heap
/// upward from here.
pub const HEAP_BASE: u64 = 0x70_0000;

/// Configuration of a whole system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Fabric geometry.
    pub geometry: FabricGeometry,
    /// Per-site fabric kinds (row-major); `None` = default pattern.
    pub kinds: Option<Vec<FuKind>>,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Port FIFO depth.
    pub fifo_depth: usize,
    /// Whether a fabric is attached at all (the pure-baseline system of
    /// experiment E10 sets this to `false`).
    pub has_fabric: bool,
}

impl SystemConfig {
    /// Validates the hardware description without building a system.
    ///
    /// # Errors
    ///
    /// Returns the [`FabricConfigError`] a fabric constructor would
    /// report: a kinds vector that does not match the grid, or a zero
    /// FIFO depth.
    pub fn validate(&self) -> Result<(), FabricConfigError> {
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.geometry.fu_count() {
                return Err(FabricConfigError::KindCountMismatch {
                    expected: self.geometry.fu_count(),
                    got: kinds.len(),
                });
            }
        }
        if self.has_fabric && self.fifo_depth == 0 {
            return Err(FabricConfigError::ZeroFifoDepth);
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            geometry: FabricGeometry::new(8, 8),
            kinds: None,
            mem: MemConfig::default(),
            fifo_depth: 4,
            has_fabric: true,
        }
    }
}

/// Aggregated run statistics.
///
/// `PartialEq` compares every counter bit-for-bit — the form the
/// fast-forward equivalence tests use to assert that bulk cycle advance
/// (see [`System::run`]) changes nothing observable.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Core statistics (instruction mix, stall breakdown).
    pub core: CoreStats,
    /// Memory statistics.
    pub mem: MemStats,
    /// Fabric statistics.
    pub fabric: dyser_fabric::FabricStats,
    /// Whether the program executed `halt`.
    pub halted: bool,
    /// Memory-latency cycles still queued but unpaid when the run ended —
    /// nonzero only when the core halts with a fetch or data miss in
    /// flight (typically the halt instruction's own fetch miss).
    pub pending_mem_stalls: u64,
}

impl RunStats {
    /// Converts the run's counters into the energy model's activity form.
    pub fn activity(&self) -> dyser_energy::Activity {
        use dyser_isa::InstrClass as C;
        dyser_energy::Activity {
            cycles: self.cycles,
            core_int_ops: self.core.class_count(C::IntAlu),
            core_muldiv_ops: self.core.class_count(C::IntMulDiv),
            core_fp_ops: self.core.class_count(C::Fp),
            core_loads: self.core.class_count(C::Load),
            core_stores: self.core.class_count(C::Store),
            core_branches: self.core.class_count(C::Branch),
            core_dyser_ops: self.core.class_count(C::Dyser),
            core_other_ops: self.core.class_count(C::Other),
            l1_accesses: self.mem.l1i.accesses + self.mem.l1d.accesses,
            l2_accesses: self.mem.l2.accesses,
            dram_accesses: self.mem.dram_accesses,
            fabric_int_ops: self.fabric.int_fu_fires,
            fabric_fp_ops: self.fabric.fp_fu_fires,
            fabric_switch_hops: self.fabric.switch_hops + self.fabric.fanout_copies,
            fabric_port_transfers: self.fabric.port_in + self.fabric.port_out,
            fabric_config_bits: self.fabric.config_bits,
        }
    }

    /// Estimates this run's energy with the given model.
    pub fn energy(&self, model: &dyser_energy::EnergyModel) -> dyser_energy::EnergyReport {
        model.estimate(&self.activity())
    }

    /// Attributes every cycle of the run to an exclusive
    /// [`dyser_sparc::CycleBucket`], with `sum(buckets) == cycles`.
    pub fn cycle_account(&self) -> CycleAccount {
        self.core.cycle_account()
    }

    /// The memory hierarchy's own estimate of the stall cycles it caused,
    /// reconciled with the core: total access latency, minus the one base
    /// cycle each L1 access overlaps with issue, minus the latency still
    /// queued but unpaid when the run ended (`pending_mem_stalls`). With
    /// hit latencies of at least one cycle (all shipped [`MemConfig`]s),
    /// this equals the account's `MemMiss` bucket exactly — the
    /// cross-check the attribution property tests assert.
    pub fn mem_miss_stall_cycles(&self) -> u64 {
        self.mem.miss_stall_cycles().saturating_sub(self.pending_mem_stalls)
    }
}

/// Fatal system errors.
#[derive(Debug, Clone)]
pub enum SysError {
    /// The core faulted.
    Core(CoreError),
    /// A configuration in the program's table failed to load at start-up
    /// validation.
    Config(ConfigError),
    /// The [`SystemConfig`] describes impossible hardware.
    InvalidConfig(FabricConfigError),
    /// The cycle budget elapsed without `halt`.
    Timeout {
        /// Cycles executed.
        cycles: u64,
    },
    /// The program trapped with a syscall number outside the emulated
    /// ABI — a typed error, never a panic. The core is left halted.
    UnknownSyscall {
        /// The trap number.
        code: u16,
    },
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysError::Core(e) => write!(f, "core fault: {e}"),
            SysError::Config(e) => write!(f, "configuration error: {e}"),
            SysError::InvalidConfig(e) => write!(f, "invalid system configuration: {e}"),
            SysError::Timeout { cycles } => write!(f, "no halt after {cycles} cycles"),
            SysError::UnknownSyscall { code } => write!(f, "unknown syscall number {code}"),
        }
    }
}

impl std::error::Error for SysError {}

impl From<CoreError> for SysError {
    fn from(e: CoreError) -> Self {
        SysError::Core(e)
    }
}

/// The memory side of the system (functional store + timing hierarchy).
#[derive(Debug)]
pub(crate) struct SysBus {
    memory: Memory,
    hierarchy: Hierarchy,
}

impl Bus for SysBus {
    fn fetch_instr(&mut self, addr: u64) -> (u32, u64) {
        let lat = self.hierarchy.fetch(addr);
        (self.memory.read_u32(addr), lat)
    }

    fn fetch_repeat(&mut self, addr: u64) -> u64 {
        self.hierarchy.fetch_repeat(addr)
    }

    fn peek_instr(&self, addr: u64) -> u32 {
        self.memory.read_u32(addr)
    }

    fn code_page_generation(&self, addr: u64) -> u64 {
        self.memory.page_generation(addr)
    }

    fn load(&mut self, addr: u64, bytes: u64, signed: bool) -> (u64, u64) {
        let lat = self.hierarchy.load(addr);
        (read_sized(&self.memory, addr, bytes, signed), lat)
    }

    fn store(&mut self, addr: u64, bytes: u64, value: u64) -> u64 {
        let lat = self.hierarchy.store(addr);
        write_sized(&mut self.memory, addr, bytes, value);
        lat
    }
}

/// Entries the configuration cache can hold (the prototype keeps recently
/// used configurations close to the fabric for fast switching).
const CONFIG_CACHE_WAYS: usize = 4;

/// How much faster a cached configuration restores compared to streaming
/// the full frame over the configuration bus.
const CONFIG_CACHE_SPEEDUP: u64 = 4;

/// The accelerator side of the system.
#[derive(Debug)]
pub(crate) struct SysCoproc {
    fabric: Option<Fabric>,
    configs: Vec<FabricConfig>,
    /// Index of the currently loaded configuration.
    active: Option<usize>,
    /// LRU list of recently loaded configuration ids (most recent last).
    cache: Vec<usize>,
}

impl Coproc for SysCoproc {
    fn cp_send(&mut self, port: usize, value: u64) -> bool {
        self.fabric.as_mut().is_some_and(|f| f.try_send(port, value))
    }

    fn cp_recv(&mut self, port: usize) -> Option<u64> {
        self.fabric.as_mut()?.try_recv(port)
    }

    fn cp_init(&mut self, config: usize) -> Result<u64, CoprocError> {
        let Some(fabric) = self.fabric.as_mut() else {
            return Err(CoprocError::NoAccelerator);
        };
        let Some(cfg) = self.configs.get(config) else {
            return Err(CoprocError::UnknownConfig { config });
        };
        if self.active == Some(config) {
            // The active configuration needs no work at all.
            return Ok(0);
        }
        fabric
            .load_config(cfg)
            .map_err(|e| CoprocError::LoadFailed { reason: e.to_string() })?;
        self.active = Some(config);
        // Configuration cache: a recently used configuration restores much
        // faster than streaming its frame over the configuration bus.
        let full = fabric.config_load_cycles(cfg);
        let hit = self.cache.contains(&config);
        self.cache.retain(|&c| c != config);
        self.cache.push(config);
        if self.cache.len() > CONFIG_CACHE_WAYS {
            self.cache.remove(0);
        }
        Ok(if hit { full.div_ceil(CONFIG_CACHE_SPEEDUP) } else { full })
    }

    fn cp_in_flight(&self) -> usize {
        self.fabric.as_ref().map_or(0, Fabric::in_flight)
    }

    fn cp_vec_in(&self, vp: usize) -> &[usize] {
        self.fabric.as_ref().map_or(&[], |f| f.vec_in_ports(vp))
    }

    fn cp_vec_out(&self, vp: usize) -> &[usize] {
        self.fabric.as_ref().map_or(&[], |f| f.vec_out_ports(vp))
    }

    fn cp_catch_up(&mut self, ticks: u64) {
        if let Some(fabric) = &mut self.fabric {
            fabric.tick_n(ticks);
        }
    }
}

/// Simulator-speed counters of the two issue-path caches. Pure
/// observability: deliberately outside [`RunStats`], whose bit-for-bit
/// equality the backends must preserve while taking different paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpeedStats {
    /// Decoded-instruction cache hits (the interpreted issue path).
    pub decode_hits: u64,
    /// Decoded-instruction cache misses.
    pub decode_misses: u64,
    /// Translated-block cache counters (the compiled issue path).
    pub blocks: BlockCacheStats,
}

impl SpeedStats {
    /// Counter-wise difference against an earlier snapshot (saturating).
    ///
    /// The process-wide totals (see `speed_stat_totals`) only ever grow;
    /// reports that claim to describe *one* sweep must subtract the
    /// totals sampled before it, or every earlier run in the process
    /// inflates the hit rates.
    #[must_use]
    pub fn minus(&self, earlier: &SpeedStats) -> SpeedStats {
        SpeedStats {
            decode_hits: self.decode_hits.saturating_sub(earlier.decode_hits),
            decode_misses: self.decode_misses.saturating_sub(earlier.decode_misses),
            blocks: self.blocks.minus(&earlier.blocks),
        }
    }
}

/// The machine's execution state — core, memory hierarchy, accelerator —
/// as a plain value owned by whoever drives it: [`System`] for
/// single-instance runs, the [`crate::batch`] lockstep scheduler for
/// many instances at once.
///
/// The advance methods are *slices*: each consumes up to a budget of
/// cycles and stops at halt, fault, or budget exhaustion, without
/// deciding whether the run as a whole timed out. Because the core's
/// bulk stall drain ([`Pipeline::tick_n`]) and the fabric's bulk advance
/// ([`Fabric::tick_n`]) are both additive, an advance of `a + b` cycles
/// is bit-identical to an advance of `a` followed by an advance of `b` —
/// the property the batch runner relies on to interleave instances at
/// arbitrary lockstep boundaries.
#[derive(Debug)]
pub(crate) struct MachineState {
    pub(crate) cpu: Pipeline,
    pub(crate) bus: SysBus,
    pub(crate) coproc: SysCoproc,
    /// The proxy kernel servicing `ta` traps (captured streams, program
    /// break, virtual clock). Part of the machine value so batch lanes
    /// carry their own OS state.
    pub(crate) kernel: ProxyKernel,
}

impl MachineState {
    /// Services the core's pending syscall, if any: reads `%o0..%o5`,
    /// dispatches through the [`SyscallHandler`], and either resumes the
    /// core with the return value and the deterministic service latency,
    /// halts it (`exit`), or reports [`SysError::UnknownSyscall`].
    ///
    /// Servicing consumes no cycles itself — the latency is charged as a
    /// counted [`dyser_sparc::StallCause::Syscall`] stall the engines
    /// drain like any other — so every backend that stops at the trap
    /// boundary resumes into a bit-identical machine.
    ///
    /// Returns whether a syscall was serviced.
    pub(crate) fn service_syscall(&mut self) -> Result<bool, SysError> {
        let Some(code) = self.cpu.pending_syscall() else {
            return Ok(false);
        };
        let mut args = [0u64; 6];
        for (i, a) in args.iter_mut().enumerate() {
            *a = self.cpu.regs().read(dyser_isa::Reg::new(8 + i as u8));
        }
        let now = self.cpu.stats().cycles;
        match self.kernel.syscall(code, args, now, &mut self.bus.memory) {
            SysOutcome::Done { retval, stall } => {
                self.cpu.complete_syscall(retval, stall);
                Ok(true)
            }
            SysOutcome::Exit { .. } => {
                self.cpu.force_halt();
                Ok(true)
            }
            SysOutcome::Unknown => {
                self.cpu.force_halt();
                Err(SysError::UnknownSyscall { code })
            }
        }
    }

    /// Advances one cycle (core and fabric in lock step).
    pub(crate) fn tick(&mut self, tracing: bool) -> Result<(), SysError> {
        if self.cpu.pending_syscall().is_some() {
            // The core is frozen at a trap: the fabric must not tick
            // either, or the lockstep (and bit-identity across engines)
            // breaks. The driver services the syscall and retries.
            return Ok(());
        }
        if tracing {
            // Stamp the hierarchy with the cycle the core is about to
            // execute (the pipeline's 0-based trace timestamp).
            self.bus.hierarchy.set_now(self.cpu.stats().cycles);
        }
        self.cpu.tick(&mut self.bus, &mut self.coproc)?;
        if let Some(fabric) = &mut self.coproc.fabric {
            fabric.tick();
        }
        Ok(())
    }

    /// Advances up to `budget` cycles on the fast-forwarding interpreted
    /// path (the engine behind [`System::run`]), stopping early at halt
    /// or fault.
    pub(crate) fn advance_fast(&mut self, budget: u64, tracing: bool) -> Result<(), SysError> {
        let mut remaining = budget;
        while remaining > 0 && !self.cpu.halted() && self.cpu.pending_syscall().is_none() {
            let skip = if tracing { 0 } else { self.cpu.skip_horizon().min(remaining) };
            if skip > 0 {
                self.cpu.tick_n(skip);
                if let Some(fabric) = &mut self.coproc.fabric {
                    fabric.tick_n(skip);
                }
                remaining -= skip;
            } else {
                self.tick(tracing)?;
                remaining -= 1;
            }
        }
        Ok(())
    }

    /// Advances up to `budget` cycles one tick at a time (the engine
    /// behind [`System::run_stepped`]), stopping early at halt or fault.
    pub(crate) fn advance_stepped(&mut self, budget: u64, tracing: bool) -> Result<(), SysError> {
        for _ in 0..budget {
            if self.cpu.halted() || self.cpu.pending_syscall().is_some() {
                break;
            }
            self.tick(tracing)?;
        }
        Ok(())
    }

    /// Advances up to `budget` cycles on the compiled backend (the engine
    /// behind [`System::run_compiled`]), stopping early at halt or fault.
    ///
    /// Fabric ticks stay *deferred*: `fabric_ticks` is the running count
    /// of coprocessor ticks already paid, and the caller must
    /// [`MachineState::settle_fabric`] once it stops slicing — the
    /// deferral survives across slices, which is what makes compiled
    /// slices compose.
    pub(crate) fn advance_compiled(
        &mut self,
        budget: u64,
        blocks: &mut BlockCache,
        line_bytes: u64,
        fabric_ticks: &mut u64,
    ) -> Result<(), SysError> {
        let mut remaining = budget;
        loop {
            if self.cpu.halted() || remaining == 0 || self.cpu.pending_syscall().is_some() {
                break Ok(());
            }
            if self.cpu.has_pending() {
                let skip = self.cpu.skip_horizon().min(remaining);
                if skip > 0 {
                    // Counted stalls advance the core in bulk; the fabric
                    // owes the same cycles and pays at the next settle.
                    self.cpu.tick_n(skip);
                    remaining -= skip;
                } else {
                    // The front micro-state polls the coprocessor every
                    // cycle: settle and fall back to lockstep ticking.
                    let owed = self.cpu.stats().cycles - *fabric_ticks;
                    self.coproc.cp_catch_up(owed);
                    *fabric_ticks = self.cpu.stats().cycles;
                    match self.tick(false) {
                        Ok(()) => *fabric_ticks += 1,
                        Err(e) => break Err(e),
                    }
                    remaining -= 1;
                }
                continue;
            }
            let block = blocks.lookup(&self.bus, self.cpu.pc(), line_bytes);
            if block.instrs.is_empty() {
                // The entry word does not decode: one interpreted cycle
                // raises the identical fault.
                let owed = self.cpu.stats().cycles - *fabric_ticks;
                self.coproc.cp_catch_up(owed);
                *fabric_ticks = self.cpu.stats().cycles;
                match self.tick(false) {
                    Ok(()) => *fabric_ticks += 1,
                    Err(e) => break Err(e),
                }
                remaining -= 1;
                continue;
            }
            match run_block(
                &mut self.cpu,
                &mut self.bus,
                &mut self.coproc,
                block,
                remaining,
                fabric_ticks,
            ) {
                Ok(run) => remaining -= run.cycles,
                Err(e) => break Err(e.into()),
            }
        }
    }

    /// Pays the fabric ticks deferred by [`MachineState::advance_compiled`].
    /// A faulting cycle never pays its fabric tick (the interpreter
    /// raises before the fabric's half-cycle), so the target on a core
    /// error is one short.
    pub(crate) fn settle_fabric(&mut self, fabric_ticks: u64, faulted: bool) {
        let target = if faulted { self.cpu.stats().cycles - 1 } else { self.cpu.stats().cycles };
        self.coproc.cp_catch_up(target.saturating_sub(fabric_ticks));
    }

    /// Pays `n` pure stall-drain cycles in bulk: cycles inside the core's
    /// counted-stall horizon touch neither the bus nor the fabric ports,
    /// so core (and, on the interpreted path, fabric) advance
    /// arithmetically. The batch runner accrues these cycles in its hot
    /// arrays and pays them here, lazily, before the next engine slice.
    pub(crate) fn fast_forward(&mut self, n: u64, pay_fabric: bool) {
        self.cpu.tick_n(n);
        if pay_fabric {
            if let Some(fabric) = &mut self.coproc.fabric {
                fabric.tick_n(n);
            }
        }
    }

    /// Statistics so far (the body behind [`System::stats`]).
    pub(crate) fn run_stats(&self) -> RunStats {
        RunStats {
            cycles: self.cpu.stats().cycles,
            core: self.cpu.stats().clone(),
            mem: self.bus.hierarchy.stats(),
            fabric: self
                .coproc
                .fabric
                .as_ref()
                .map(|f| *f.stats())
                .unwrap_or_default(),
            halted: self.cpu.halted(),
            pending_mem_stalls: self.cpu.pending_stall_cycles(dyser_sparc::StallCause::ICache)
                + self.cpu.pending_stall_cycles(dyser_sparc::StallCause::DCache),
        }
    }
}

/// The integrated machine: core, fabric, and memory in lock step.
#[derive(Debug)]
pub struct System {
    state: MachineState,
    config: SystemConfig,
    tracing: bool,
    /// Translated blocks for [`System::run_compiled`]; keyed by PC and
    /// validated against code-page write generations, so it never holds
    /// stale text.
    blocks: BlockCache,
}

impl System {
    /// Creates a system with no program loaded (entry `0x10000`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration describes impossible hardware (see
    /// [`SystemConfig::validate`]); use [`System::try_new`] to handle the
    /// error instead.
    pub fn new(config: SystemConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a system, reporting malformed configurations as errors.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::InvalidConfig`] when
    /// [`SystemConfig::validate`] rejects the hardware description.
    pub fn try_new(config: SystemConfig) -> Result<Self, SysError> {
        config.validate().map_err(SysError::InvalidConfig)?;
        let fabric = match (config.has_fabric, &config.kinds) {
            (false, _) => None,
            (true, Some(kinds)) => {
                let mut f = Fabric::with_kinds(config.geometry, kinds.clone())
                    .map_err(SysError::InvalidConfig)?;
                f.set_fifo_depth(config.fifo_depth).map_err(SysError::InvalidConfig)?;
                Some(f)
            }
            (true, None) => {
                let mut f = Fabric::new(config.geometry);
                f.set_fifo_depth(config.fifo_depth).map_err(SysError::InvalidConfig)?;
                Some(f)
            }
        };
        Ok(System {
            state: MachineState {
                cpu: Pipeline::new(dyser_compiler::CODE_BASE),
                bus: SysBus { memory: Memory::new(), hierarchy: Hierarchy::new(config.mem) },
                coproc: SysCoproc { fabric, configs: Vec::new(), active: None, cache: Vec::new() },
                kernel: ProxyKernel::new(),
            },
            config,
            tracing: false,
            blocks: BlockCache::new(),
        })
    }

    /// Enables event tracing on every component, each into its own ring
    /// buffer of `capacity` events (newest kept on overflow).
    ///
    /// When tracing is off — the default — the only cost on the hot path
    /// is one branch per would-be event.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.state.cpu.enable_trace(capacity);
        self.state.bus.hierarchy.enable_trace(capacity);
        if let Some(fabric) = &mut self.state.coproc.fabric {
            fabric.enable_trace(capacity);
        }
        self.tracing = true;
    }

    /// Detaches all trace buffers and returns the merged events ordered by
    /// cycle, together with the total number of events dropped to ring
    /// overflow. Returns `None` when tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<(Vec<TraceEvent>, u64)> {
        if !self.tracing {
            return None;
        }
        self.tracing = false;
        let mut events = Vec::new();
        let mut dropped = 0;
        let buffers = [
            self.state.cpu.take_trace(),
            self.state.bus.hierarchy.take_trace(),
            self.state.coproc.fabric.as_mut().and_then(|f| f.take_trace()),
        ];
        for buf in buffers.into_iter().flatten() {
            dropped += buf.dropped();
            events.extend(buf.into_ordered());
        }
        events.sort_by_key(|e| e.cycle);
        Some((events, dropped))
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The core.
    pub fn cpu(&self) -> &Pipeline {
        &self.state.cpu
    }

    /// Mutable access to the core (argument set-up).
    pub fn cpu_mut(&mut self) -> &mut Pipeline {
        &mut self.state.cpu
    }

    /// The functional memory.
    pub fn memory(&self) -> &Memory {
        &self.state.bus.memory
    }

    /// Mutable access to the functional memory (input set-up).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.state.bus.memory
    }

    /// The fabric, if attached.
    pub fn fabric(&self) -> Option<&Fabric> {
        self.state.coproc.fabric.as_ref()
    }

    /// Splits the system into the parts the batch scheduler drives
    /// directly: the machine state, the (per-instance) block cache, the
    /// L1I line size baked into block translation, and whether tracing is
    /// on (a traced instance must take the per-cycle path throughout).
    pub(crate) fn batch_parts(&mut self) -> (&mut MachineState, &mut BlockCache, u64, bool) {
        (&mut self.state, &mut self.blocks, self.config.mem.l1i.line_bytes, self.tracing)
    }

    /// Loads a compiled program: code, constant pool, configuration table.
    ///
    /// # Errors
    ///
    /// Validates every configuration against the fabric geometry up front.
    pub fn load_program(&mut self, program: &Program) -> Result<(), SysError> {
        self.state.bus.memory.write_code(program.entry, &program.code);
        self.state.bus.memory.write_u64_slice(dyser_compiler::POOL_BASE, &program.pool);
        if let Some(fabric) = &self.state.coproc.fabric {
            for cfg in &program.configs {
                if cfg.geometry() != fabric.geometry() {
                    return Err(SysError::Config(ConfigError::GeometryMismatch {
                        config: cfg.geometry(),
                        fabric: fabric.geometry(),
                    }));
                }
                cfg.validate().map_err(SysError::Config)?;
            }
        }
        self.state.coproc.configs = program.configs.clone();
        self.state.coproc.active = None;
        self.state.coproc.cache.clear();
        self.state.cpu = Pipeline::new(program.entry);
        self.state.kernel = ProxyKernel::new();
        self.blocks.clear();
        Ok(())
    }

    /// Loads raw instruction words at `addr` and sets the entry there.
    pub fn load_raw(&mut self, addr: u64, words: &[u32]) {
        self.state.bus.memory.write_code(addr, words);
        self.state.cpu = Pipeline::new(addr);
        self.state.kernel = ProxyKernel::new();
        self.blocks.clear();
    }

    /// Writes the kernel arguments into `%o0..%o5`.
    ///
    /// # Panics
    ///
    /// Panics if more than six arguments are supplied.
    pub fn set_args(&mut self, args: &[u64]) {
        assert!(args.len() <= 6, "at most six arguments");
        for (i, a) in args.iter().enumerate() {
            self.state.cpu.regs_mut().write(dyser_isa::Reg::new(8 + i as u8), *a);
        }
    }

    /// Sets up an emulated process on top of the loaded code: writes the
    /// FASE-style startup image (argc, argv, envp, string bytes) at
    /// [`STACK_BASE`], seeds `%o0`/`%o1`/`%o2` with argc/argv/envp and
    /// `%sp` with the stack pointer, points the proxy kernel's program
    /// break at [`HEAP_BASE`], and installs `stdin`.
    ///
    /// Call after [`System::load_program`] / [`System::load_raw`] (both
    /// reset the kernel) and before running.
    pub fn setup_process(&mut self, argv: &[&str], envp: &[&str], stdin: &[u8]) {
        let stack = write_startup_stack(&mut self.state.bus.memory, STACK_BASE, argv, envp);
        let regs = self.state.cpu.regs_mut();
        regs.write(dyser_isa::regs::O0, stack.argc);
        regs.write(dyser_isa::regs::O1, stack.argv);
        regs.write(dyser_isa::regs::O2, stack.envp);
        regs.write(dyser_isa::regs::SP, stack.sp);
        self.state.kernel.set_heap_base(HEAP_BASE);
        self.state.kernel.set_stdin(stdin);
    }

    /// The proxy kernel (captured stdout/stderr, exit code, break).
    pub fn kernel(&self) -> &ProxyKernel {
        &self.state.kernel
    }

    /// Mutable access to the proxy kernel (stdin installation, heap base).
    pub fn kernel_mut(&mut self) -> &mut ProxyKernel {
        &mut self.state.kernel
    }

    /// Advances the machine one cycle (core and fabric in lock step).
    ///
    /// # Errors
    ///
    /// Propagates core faults.
    pub fn tick(&mut self) -> Result<(), SysError> {
        self.state.tick(self.tracing)
    }

    /// Runs until `halt` or `max_cycles`, fast-forwarding through
    /// quiescent stretches.
    ///
    /// When the core's only work is draining a counted stall
    /// ([`Pipeline::skip_horizon`] > 0), those cycles touch neither the
    /// bus nor the fabric ports, so core and fabric advance together in
    /// one arithmetic step — clamped to the remaining cycle budget, so a
    /// timeout lands on exactly the same cycle as the stepped path. The
    /// fabric bulk-advances only while quiescent and steps otherwise
    /// (see [`dyser_fabric::Fabric::tick_n`]). Every `RunStats` counter
    /// is bit-identical to [`System::run_stepped`]; with tracing enabled
    /// the per-cycle path is used throughout so event timestamps and the
    /// hierarchy's trace clock stay exact.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::Timeout`] if the budget elapses, or a core
    /// fault.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, SysError> {
        let start = self.state.cpu.stats().cycles;
        loop {
            let used = self.state.cpu.stats().cycles - start;
            self.state.advance_fast(max_cycles - used, self.tracing)?;
            if !self.try_service(start, max_cycles)? {
                break;
            }
        }
        self.finish()
    }

    /// Services a pending syscall at an engine-slice boundary, if budget
    /// remains; returns whether the engine should resume.
    ///
    /// The budget rule is part of the determinism contract: a trap that
    /// retires on the very cycle the budget runs out is *not* serviced —
    /// the run times out — and since cycle counters are bit-identical
    /// across engines, every engine makes the same call. Servicing itself
    /// consumes zero cycles; the latency arrives as a counted
    /// [`dyser_sparc::StallCause::Syscall`] stall drained on resume.
    fn try_service(&mut self, start: u64, max_cycles: u64) -> Result<bool, SysError> {
        let used = self.state.cpu.stats().cycles - start;
        if self.state.cpu.pending_syscall().is_some() && used < max_cycles {
            self.state.service_syscall()?;
            return Ok(!self.state.cpu.halted());
        }
        Ok(false)
    }

    fn finish(&self) -> Result<RunStats, SysError> {
        if !self.state.cpu.halted() {
            return Err(SysError::Timeout { cycles: self.state.cpu.stats().cycles });
        }
        Ok(self.stats())
    }

    /// Runs until `halt` or `max_cycles`, one [`System::tick`] per cycle —
    /// the reference path [`System::run`] must match bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::Timeout`] if the budget elapses, or a core
    /// fault.
    pub fn run_stepped(&mut self, max_cycles: u64) -> Result<RunStats, SysError> {
        let start = self.state.cpu.stats().cycles;
        loop {
            let used = self.state.cpu.stats().cycles - start;
            self.state.advance_stepped(max_cycles - used, self.tracing)?;
            if !self.try_service(start, max_cycles)? {
                break;
            }
        }
        self.finish()
    }

    /// Runs until `halt` or `max_cycles` on the compiled backend:
    /// straight-line spans execute as pre-decoded thunks out of the block
    /// cache (see [`dyser_compiled`]), and fabric ticks are paid lazily —
    /// settled to the core's cycle count immediately before anything
    /// observes the fabric, which commutes with core-only activity.
    ///
    /// Every `RunStats` counter is bit-identical to [`System::run`] and
    /// [`System::run_stepped`]. With tracing enabled the interpreted path
    /// is used throughout, since per-event timestamps require the
    /// per-cycle interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::Timeout`] if the budget elapses, or a core
    /// fault.
    pub fn run_compiled(&mut self, max_cycles: u64) -> Result<RunStats, SysError> {
        if self.tracing {
            return self.run(max_cycles);
        }
        let line_bytes = self.config.mem.l1i.line_bytes;
        // Fabric ticks paid so far. The interpreter's invariant: one
        // fabric tick per core cycle, paid after the core's half-cycle —
        // so during cycle T the coprocessor sees T-1 fabric ticks. The
        // deferral persists across syscall service: the proxy kernel never
        // touches the fabric, so service commutes with the settlement.
        let mut fabric_ticks = self.state.cpu.stats().cycles;
        let start = self.state.cpu.stats().cycles;
        let result = loop {
            let used = self.state.cpu.stats().cycles - start;
            let sliced = self.state.advance_compiled(
                max_cycles - used,
                &mut self.blocks,
                line_bytes,
                &mut fabric_ticks,
            );
            if sliced.is_err() {
                break sliced;
            }
            match self.try_service(start, max_cycles) {
                Ok(true) => continue,
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        self.state
            .settle_fabric(fabric_ticks, matches!(&result, Err(SysError::Core(_))));
        result?;
        self.finish()
    }

    /// Simulator-speed counters of the issue-path caches (see
    /// [`SpeedStats`]).
    pub fn speed_stats(&self) -> SpeedStats {
        let (decode_hits, decode_misses) = self.state.cpu.decode_cache_stats();
        SpeedStats { decode_hits, decode_misses, blocks: self.blocks.stats() }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        self.state.run_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_isa::{regs, AluOp, Assembler, Instr, Op2};

    #[test]
    fn raw_program_runs() {
        let mut asm = Assembler::new();
        asm.push(Instr::mov_imm(regs::O0, 5));
        asm.push(Instr::alu(AluOp::Mulx, regs::O0, regs::O0, Op2::Imm(8)));
        asm.push(Instr::Halt);
        let mut sys = System::new(SystemConfig::default());
        sys.load_raw(0x10000, &asm.assemble().unwrap());
        let stats = sys.run(1000).unwrap();
        assert!(stats.halted);
        assert_eq!(sys.cpu().regs().read(regs::O0), 40);
        assert!(stats.cycles > 3, "fetch misses cost cycles");
    }

    #[test]
    fn timeout_reported() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.branch(dyser_isa::ICond::Always, "spin");
        asm.push(Instr::Nop);
        let mut sys = System::new(SystemConfig::default());
        sys.load_raw(0x10000, &asm.assemble().unwrap());
        assert!(matches!(sys.run(100), Err(SysError::Timeout { .. })));
    }

    #[test]
    fn fabric_free_system_runs_plain_code() {
        let mut asm = Assembler::new();
        asm.push(Instr::mov_imm(regs::O1, 7));
        asm.push(Instr::Halt);
        let cfg = SystemConfig { has_fabric: false, ..Default::default() };
        let mut sys = System::new(cfg);
        sys.load_raw(0x10000, &asm.assemble().unwrap());
        sys.run(1000).unwrap();
        assert_eq!(sys.cpu().regs().read(regs::O1), 7);
        assert!(sys.fabric().is_none());
    }

    #[test]
    fn set_args_lands_in_out_registers() {
        let mut sys = System::new(SystemConfig::default());
        sys.set_args(&[1, 2, 3]);
        assert_eq!(sys.cpu().regs().read(regs::O0), 1);
        assert_eq!(sys.cpu().regs().read(regs::O2), 3);
    }
}
