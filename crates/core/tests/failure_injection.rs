//! Failure injection: every way a run can go wrong must surface as a
//! structured error, never a wrong answer or a hang.

use dyser_compiler::Program;
use dyser_core::{run_program, HarnessError, RunConfig, SysError, System, SystemConfig};
use dyser_fabric::{ConfigBuilder, FabricGeometry, FuOp};
use dyser_isa::{regs, Assembler, ConfigId, DyserInstr, ICond, Instr, Op2, Port};

fn program_with(asm: &Assembler, configs: Vec<dyser_fabric::FabricConfig>) -> Program {
    Program {
        listing: asm.resolve().unwrap(),
        code: asm.assemble().unwrap(),
        entry: dyser_compiler::CODE_BASE,
        pool: Vec::new(),
        spill_slots: 1,
        configs,
    }
}

#[test]
fn dinit_to_missing_config_faults() {
    let mut asm = Assembler::new();
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(3) }));
    asm.push(Instr::Halt);
    let program = program_with(&asm, Vec::new());
    let mut sys = System::new(SystemConfig::default());
    sys.load_program(&program).unwrap();
    let err = sys.run(1000).unwrap_err();
    assert!(matches!(err, SysError::Core(_)), "got {err}");
    assert!(err.to_string().contains("unknown configuration 3"));
}

#[test]
fn dyser_instruction_without_fabric_faults() {
    let mut asm = Assembler::new();
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    asm.push(Instr::Halt);
    let program = program_with(&asm, Vec::new());
    let mut sys = System::new(SystemConfig { has_fabric: false, ..Default::default() });
    sys.load_program(&program).unwrap();
    let err = sys.run(1000).unwrap_err();
    assert!(err.to_string().contains("no accelerator"), "got {err}");
}

#[test]
fn recv_from_silent_port_hangs_into_timeout() {
    // A drecv with nothing configured to produce on that port stalls the
    // pipeline forever: the cycle budget converts it into a clean timeout.
    let geom = FabricGeometry::new(2, 2);
    let mut b = ConfigBuilder::new(geom);
    let x = b.input_value(0);
    let y = b.op(FuOp::PassA, &[x]);
    b.output_value(y, 0);
    let config = b.build().unwrap();

    let mut asm = Assembler::new();
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    // Receive without ever sending: permanent DyserRecv stall.
    asm.push(Instr::Dyser(DyserInstr::Recv { port: Port::new(0), rd: regs::O0 }));
    asm.push(Instr::Halt);
    let program = program_with(&asm, vec![config]);
    let mut sys = System::new(SystemConfig { geometry: geom, ..Default::default() });
    sys.load_program(&program).unwrap();
    match sys.run(5_000) {
        Err(SysError::Timeout { cycles }) => assert_eq!(cycles, 5_000),
        other => panic!("expected timeout, got {other:?}"),
    }
    // The stall is attributed where it belongs.
    assert!(sys.stats().core.stall_count(dyser_sparc::StallCause::DyserRecv) > 4_000);
}

#[test]
fn geometry_mismatched_config_rejected_at_load() {
    let mut b = ConfigBuilder::new(FabricGeometry::new(2, 2));
    let x = b.input_value(0);
    b.output_value(x, 0);
    let config = b.build().unwrap();

    let mut asm = Assembler::new();
    asm.push(Instr::Halt);
    let program = program_with(&asm, vec![config]);
    // System fabric is 4x4; the 2x2 configuration must be rejected up front.
    let mut sys = System::new(SystemConfig {
        geometry: FabricGeometry::new(4, 4),
        ..Default::default()
    });
    let err = sys.load_program(&program).unwrap_err();
    assert!(matches!(err, SysError::Config(_)), "got {err}");
}

#[test]
fn harness_reports_mismatches_with_address_detail() {
    // A program that writes the wrong value: the harness names the exact
    // address and both words.
    let mut asm = Assembler::new();
    asm.push(Instr::mov_imm(regs::O1, 99));
    asm.push(Instr::Store {
        kind: dyser_isa::StoreKind::Stx,
        rs: regs::O1,
        rs1: regs::O0,
        op2: Op2::Imm(0),
    });
    asm.push(Instr::Halt);
    let program = program_with(&asm, Vec::new());
    let err = run_program(
        "baseline",
        &program,
        &[0x5000],
        &[],
        &[(0x5000, vec![42])],
        &RunConfig::default(),
    )
    .unwrap_err();
    match &err {
        HarnessError::Mismatch { addr, expected, got, .. } => {
            assert_eq!(*addr, 0x5000);
            assert_eq!(*expected, 42);
            assert_eq!(*got, 99);
        }
        other => panic!("expected mismatch, got {other}"),
    }
    assert!(err.to_string().contains("0x5000"));
}

#[test]
fn config_cache_accelerates_reconfiguration() {
    // Two configurations, switched back and forth: the second visit to
    // each is a cache hit and must stall far less.
    let geom = FabricGeometry::new(4, 4);
    let make = |port: usize| {
        let mut b = ConfigBuilder::new(geom);
        let x = b.input_value(port);
        let y = b.op(FuOp::PassA, &[x]);
        b.output_value(y, 0);
        b.build().unwrap()
    };
    let (c0, c1) = (make(0), make(1));

    let mut asm = Assembler::new();
    // Cold loads: 0, 1; warm reloads: 0, 1.
    for id in [0u16, 1, 0, 1] {
        asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(id) }));
    }
    asm.push(Instr::Halt);
    let _ = ICond::Always;
    let program = program_with(&asm, vec![c0.clone(), c1.clone()]);
    let mut sys = System::new(SystemConfig { geometry: geom, ..Default::default() });
    sys.load_program(&program).unwrap();
    let stats = sys.run(10_000).unwrap();

    let full = c0.frame_bits().div_ceil(64) + c1.frame_bits().div_ceil(64);
    let observed = stats.core.stall_count(dyser_sparc::StallCause::DyserConfig);
    assert!(
        observed < 2 * full,
        "warm reloads must be cheaper than two more cold loads: {observed} vs {}",
        2 * full
    );
    assert!(observed > full, "warm reloads still cost something");
}
