//! Deterministic pseudo-random number generation for the workspace.
//!
//! The simulator's workload generators, the scheduler's random-restart
//! refinement, and the seeded property tests all need reproducible random
//! streams, but none of them needs cryptographic quality. This crate provides
//! a tiny [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-style generator
//! with a `rand`-like surface (`seed_from_u64`, `gen_range`, `gen_bool`) so
//! the workspace builds with no external dependencies — a requirement for the
//! offline tier-1 verify.
//!
//! Streams are stable across platforms and releases: changing them would
//! silently change every generated workload, so treat the output sequence as
//! part of the crate's API.

use std::ops::Range;

/// A 64-bit SplitMix64 generator. Cheap to seed, cheap to step, and good
/// enough statistically for test-data generation and randomized placement.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a value uniformly distributed over `range` (half-open).
    ///
    /// Mirrors `rand::Rng::gen_range` for the range types the workspace uses,
    /// so call sites read the same with either backend.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Half-open ranges that [`Rng64::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng64) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire multiply-shift;
/// the tiny remaining bias at 64-bit spans is irrelevant for test data).
fn below(rng: &mut Rng64, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut Rng64) -> u64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample(self, rng: &mut Rng64) -> i64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(below(rng, span) as i64)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample(self, rng: &mut Rng64) -> u32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + below(rng, (self.end - self.start) as u64) as u32
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_is_stable() {
        // The exact sequence is part of the API: workload inputs and golden
        // stats depend on it. Update these constants only deliberately.
        let mut rng = Rng64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn clone_mid_stream_continues_identically() {
        let mut a = Rng64::seed_from_u64(0xD75E);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_give_independent_streams() {
        // SplitMix-style seeding must decorrelate even minimally different
        // seeds: the fuzzer derives per-case streams from `seed ^ f(index)`,
        // so adjacent-seed correlation would correlate test cases. Over a
        // 64-bit XOR of paired draws, each bit should flip roughly half the
        // time; allow a generous band around 50%.
        for base in [0u64, 1, 0xD75E, u64::MAX - 3] {
            let mut a = Rng64::seed_from_u64(base);
            let mut b = Rng64::seed_from_u64(base.wrapping_add(1));
            let draws = 4096;
            let mut differing_bits = 0u64;
            for _ in 0..draws {
                differing_bits += (a.next_u64() ^ b.next_u64()).count_ones() as u64;
            }
            let frac = differing_bits as f64 / (draws as f64 * 64.0);
            assert!(
                (0.47..0.53).contains(&frac),
                "seeds {base}/{}: {frac:.3} of bits differ, expected ~0.5",
                base.wrapping_add(1)
            );
        }
    }

    #[test]
    fn streams_do_not_collide_across_seeds() {
        // 1000 draws from each of two related seeds share no values — the
        // sequences are distinct streams, not shifted copies of each other.
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7 ^ 0x9E37_79B9_7F4A_7C15);
        let from_a: std::collections::HashSet<u64> = (0..1000).map(|_| a.next_u64()).collect();
        assert!((0..1000).all(|_| !from_a.contains(&b.next_u64())));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3u64..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&i));
            let s = rng.gen_range(0usize..5);
            assert!(s < 5);
            let f = rng.gen_range(-4.0f64..4.0);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
