//! End-to-end tests of the simulation service: concurrent jobs over the
//! shared compile cache must be byte-identical to serial in-process
//! runs, budgets must be enforced mid-job, and malformed or impossible
//! jobs must come back as typed errors without taking a worker down.

use std::sync::Mutex;
use std::thread;

use dyser_bench::dse::{point_sim, DsePoint, FuMix, MemPreset};
use dyser_bench::experiments::{run_experiment_scaled, SEED};
use dyser_bench::serve::{
    http_exchange, parse_envelope, submit, JobError, JobRequest, JobResult, RunSpec, SystemSpec,
};
use dyser_bench::{stats_attribution, Scale, EXPERIMENT_IDS};
use dyser_core::{run_kernel, Backend, RunConfig};
use dyser_serve::{execute_job, ServeConfig, Server};
use dyser_workloads::suite;

/// Experiment scale for the service tests: small enough for debug-mode
/// CI, large enough that every kernel actually simulates.
const SCALE: f64 = 0.08;

/// The tests in this file share process-global state (the compile
/// cache, the backend gate, the speed-stat counters); run them one at a
/// time so each test's concurrency is exactly the concurrency it
/// arranged itself.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Boots an in-process daemon on an OS-assigned port.
fn spawn_server(shards: usize) -> String {
    let config = ServeConfig { addr: "127.0.0.1:0".into(), shards, ..ServeConfig::default() };
    Server::bind(config).expect("bind test server").spawn()
}

/// Submits `jobs` from `clients` concurrent client threads, preserving
/// job order in the returned outcomes.
fn submit_concurrently(
    url: &str,
    jobs: &[JobRequest],
    clients: usize,
) -> Vec<Result<JobResult, JobError>> {
    let slots: Vec<Mutex<Option<Result<JobResult, JobError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|s| {
        for c in 0..clients {
            let slots = &slots;
            s.spawn(move || {
                for (i, job) in jobs.iter().enumerate() {
                    if i % clients == c {
                        *slots[i].lock().expect("slot") = Some(submit(url, job));
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot").expect("every job submitted"))
        .collect()
}

#[test]
fn concurrent_experiment_jobs_are_byte_identical_to_serial_runs() {
    let _g = lock();
    // Serial in-process reference: the exact text `repro --csv` renders.
    let expected: Vec<String> = EXPERIMENT_IDS
        .iter()
        .map(|id| run_experiment_scaled(id, Scale(SCALE)).to_csv())
        .collect();

    let url = spawn_server(4);
    let jobs: Vec<JobRequest> = [Backend::Interpreted, Backend::Compiled]
        .iter()
        .flat_map(|b| {
            EXPERIMENT_IDS.iter().map(|id| JobRequest::Experiment {
                id: (*id).to_owned(),
                csv: true,
                scale: SCALE,
                backend: Some(*b),
            })
        })
        .collect();

    let outcomes = submit_concurrently(&url, &jobs, 4);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let want = &expected[i % EXPERIMENT_IDS.len()];
        match outcome {
            Ok(JobResult::Experiment { text }) => {
                assert_eq!(
                    &text, want,
                    "job {i} ({:?}) diverged from the serial in-process run",
                    jobs[i]
                );
            }
            other => panic!("job {i} ({:?}) failed: {other:?}", jobs[i]),
        }
    }
}

#[test]
fn stats_job_matches_in_process_sweep() {
    let _g = lock();
    let url = spawn_server(2);
    let job = JobRequest::Experiment {
        id: "stats".into(),
        csv: false,
        scale: SCALE,
        backend: None,
    };
    // No other jobs are in flight, so the served sweep's speed-stat
    // delta must equal a local sweep's.
    let served = match submit(&url, &job) {
        Ok(JobResult::Experiment { text }) => text,
        other => panic!("stats job failed: {other:?}"),
    };
    let local = stats_attribution(Scale(SCALE)).to_string();
    assert_eq!(served, local, "served stats sweep diverged from the in-process sweep");
}

#[test]
fn concurrent_kernel_jobs_are_bit_identical_to_run_kernel() {
    let _g = lock();
    let kernels: Vec<_> = suite().into_iter().take(3).collect();
    let sizes: Vec<usize> =
        kernels.iter().map(|k| (k.default_n / 16).max(8) / 4 * 4).collect();

    // Serial in-process reference under the same configurations.
    let mut expected = Vec::new();
    for (backend, stepped) in
        [(Backend::Interpreted, false), (Backend::Compiled, false), (Backend::Interpreted, true)]
    {
        for (k, n) in kernels.iter().zip(&sizes) {
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            config.backend = backend;
            config.stepped = stepped;
            let r = run_kernel(&k.case(*n, SEED), &config)
                .unwrap_or_else(|e| panic!("in-process {}: {e}", k.name));
            expected.push((format!("{:?}", r.baseline), format!("{:?}", r.dyser)));
        }
    }

    let url = spawn_server(4);
    let jobs: Vec<JobRequest> = [(Backend::Interpreted, false), (Backend::Compiled, false), (Backend::Interpreted, true)]
        .iter()
        .flat_map(|(backend, stepped)| {
            kernels.iter().zip(&sizes).map(move |(k, n)| JobRequest::Kernel {
                name: k.name.to_owned(),
                n: Some(*n),
                run: RunSpec { backend: Some(*backend), stepped: *stepped, ..RunSpec::default() },
                system: SystemSpec::default(),
            })
        })
        .collect();

    let outcomes = submit_concurrently(&url, &jobs, 4);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(JobResult::Run { baseline_stats, dyser_stats, baseline_cycles, dyser_cycles, .. }) => {
                assert_eq!(
                    (&baseline_stats, &dyser_stats),
                    (&expected[i].0, &expected[i].1),
                    "job {i} ({:?}) stats diverged from run_kernel",
                    jobs[i]
                );
                assert!(baseline_cycles > 0 && dyser_cycles > 0);
            }
            other => panic!("job {i} ({:?}) failed: {other:?}", jobs[i]),
        }
    }
}

#[test]
fn mid_job_cycle_budget_is_enforced() {
    let _g = lock();
    let url = spawn_server(1);
    let job = JobRequest::Kernel {
        name: suite()[0].name.to_owned(),
        n: None,
        run: RunSpec { max_cycles: Some(64), ..RunSpec::default() },
        system: SystemSpec::default(),
    };
    match submit(&url, &job) {
        Err(JobError::Timeout { cycles }) => {
            assert!(cycles >= 1, "timeout must report the cycles it ran");
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
    // The worker survived the budgeted job and still serves.
    match submit(&url, &JobRequest::Kernel {
        name: suite()[0].name.to_owned(),
        n: Some(8),
        run: RunSpec::default(),
        system: SystemSpec::default(),
    }) {
        Ok(JobResult::Run { .. }) => {}
        other => panic!("follow-up job failed: {other:?}"),
    }
}

#[test]
fn impossible_and_malformed_jobs_return_typed_errors() {
    let _g = lock();
    let url = spawn_server(1);

    // Impossible hardware: the fuzzer's zero-depth FIFO configuration.
    let zero_fifo = JobRequest::Kernel {
        name: suite()[0].name.to_owned(),
        n: Some(8),
        run: RunSpec::default(),
        system: SystemSpec { fifo_depth: Some(0), ..SystemSpec::default() },
    };
    match submit(&url, &zero_fifo) {
        Err(JobError::InvalidConfig(_)) => {}
        other => panic!("expected invalid-config, got {other:?}"),
    }

    // A geometry the fabric cannot represent.
    let huge = JobRequest::Kernel {
        name: suite()[0].name.to_owned(),
        n: Some(8),
        run: RunSpec::default(),
        system: SystemSpec { rows: Some(99), ..SystemSpec::default() },
    };
    match submit(&url, &huge) {
        Err(JobError::InvalidConfig(_)) => {}
        other => panic!("expected invalid-config, got {other:?}"),
    }

    match submit(&url, &JobRequest::Kernel {
        name: "no-such-kernel".into(),
        n: None,
        run: RunSpec::default(),
        system: SystemSpec::default(),
    }) {
        Err(JobError::UnknownKernel(_)) => {}
        other => panic!("expected unknown-kernel, got {other:?}"),
    }

    match submit(&url, &JobRequest::Experiment {
        id: "e99".into(),
        csv: false,
        scale: SCALE,
        backend: None,
    }) {
        Err(JobError::UnknownExperiment(_)) => {}
        other => panic!("expected unknown-experiment, got {other:?}"),
    }

    // A body that is not JSON at all.
    let reply = http_exchange(&url, "POST", "/job", "this is not json").expect("exchange");
    match parse_envelope(&reply) {
        Err(JobError::InvalidRequest(_)) => {}
        other => panic!("expected invalid-request, got {other:?}"),
    }

    // An unknown endpoint.
    let reply = http_exchange(&url, "GET", "/nope", "").expect("exchange");
    match parse_envelope(&reply) {
        Err(JobError::Protocol(_)) => {}
        other => panic!("expected protocol error, got {other:?}"),
    }

    // After all of that, the single worker still serves real jobs —
    // no panic escaped.
    match submit(&url, &JobRequest::Kernel {
        name: suite()[0].name.to_owned(),
        n: Some(8),
        run: RunSpec::default(),
        system: SystemSpec::default(),
    }) {
        Ok(JobResult::Run { .. }) => {}
        other => panic!("worker did not survive: {other:?}"),
    }

    let health = dyser_bench::serve::health(&url).expect("health");
    assert!(health.contains("\"ok\": true"), "health reply: {health}");
}

#[test]
fn traced_job_returns_a_chrome_trace_artifact() {
    let _g = lock();
    let url = spawn_server(1);
    let job = JobRequest::Kernel {
        name: suite()[0].name.to_owned(),
        n: Some(8),
        run: RunSpec { trace: true, ..RunSpec::default() },
        system: SystemSpec::default(),
    };
    match submit(&url, &job) {
        Ok(JobResult::Run { trace_json: Some(trace), .. }) => {
            dyser_trace::validate_json(&trace).expect("trace artifact must be valid JSON");
            assert!(trace.contains("traceEvents"));
        }
        other => panic!("expected a traced run, got {other:?}"),
    }
}

#[test]
fn ir_jobs_compile_and_run_through_the_service() {
    let _g = lock();
    let url = spawn_server(1);
    // Execute a direct in-process job first to pin the expected shape.
    let bad_ir = JobRequest::Ir {
        text: "this is not ir".into(),
        function: None,
        args: vec![],
        init: vec![],
        expected: vec![],
        run: RunSpec::default(),
        system: SystemSpec::default(),
    };
    match execute_job(&bad_ir, 1_000_000) {
        Err(JobError::Compile(_)) => {}
        other => panic!("expected a compile error, got {other:?}"),
    }
    match submit(&url, &bad_ir) {
        Err(JobError::Compile(_)) => {}
        other => panic!("expected a compile error over the wire, got {other:?}"),
    }
}

#[test]
fn program_jobs_match_in_process_whole_program_runs() {
    let _g = lock();
    let url = spawn_server(2);
    let geometry = dyser_fabric::FabricGeometry::new(8, 8);
    let n = 24;
    for (name, backend) in
        [("p1", Backend::Interpreted), ("p2", Backend::Compiled), ("p3", Backend::Interpreted)]
    {
        // In-process reference under the same configuration.
        let build = dyser_workloads::programs::by_name(name).expect("known program");
        let case = build(geometry, n, SEED).expect("8x8 fits every program");
        let mut rc = RunConfig::default();
        rc.system.geometry = geometry;
        rc.backend = backend;
        let base = dyser_core::run_whole_program("baseline", &case.baseline, &case, &rc)
            .unwrap_or_else(|e| panic!("in-process {name} baseline: {e}"));
        let dyser = dyser_core::run_whole_program("dyser", &case.accelerated, &case, &rc)
            .unwrap_or_else(|e| panic!("in-process {name} dyser: {e}"));

        let job = JobRequest::Program {
            name: name.into(),
            n: Some(n),
            run: RunSpec { backend: Some(backend), ..RunSpec::default() },
        };
        match submit(&url, &job) {
            Ok(JobResult::Program {
                name: served_name,
                baseline_cycles,
                dyser_cycles,
                stdout,
                exit_code,
                ..
            }) => {
                assert_eq!(served_name, name);
                assert_eq!(baseline_cycles, base.stats.cycles, "{name}: baseline cycles");
                assert_eq!(dyser_cycles, dyser.stats.cycles, "{name}: dyser cycles");
                assert_eq!(stdout.as_bytes(), &dyser.stdout[..], "{name}: served stdout");
                assert_eq!(exit_code, dyser.exit_code, "{name}: served exit code");
            }
            other => panic!("{name} program job failed: {other:?}"),
        }
    }
    // Unknown programs and invalid sizes come back as typed errors.
    let unknown =
        JobRequest::Program { name: "p9".into(), n: Some(16), run: RunSpec::default() };
    match submit(&url, &unknown) {
        Err(JobError::UnknownKernel(_)) => {}
        other => panic!("expected unknown-kernel, got {other:?}"),
    }
    let odd = JobRequest::Program { name: "p1".into(), n: Some(7), run: RunSpec::default() };
    match submit(&url, &odd) {
        Err(JobError::InvalidRequest(_)) => {}
        other => panic!("expected invalid-request, got {other:?}"),
    }
}

#[test]
fn dse_point_jobs_match_in_process_sweep_metrics() {
    let _g = lock();

    // In-process reference: the exact metrics `run_dse` would record.
    let kernel = suite().into_iter().find(|k| k.name == "saxpy").expect("saxpy in suite");
    let point = DsePoint {
        kernel: "saxpy".into(),
        rows: 4,
        cols: 4,
        mix: FuMix::Universal,
        fifo_depth: 2,
        mem: MemPreset::Perfect,
        unroll: 2,
    };
    let rc = point
        .run_config(&kernel, Some(Backend::Compiled))
        .expect("valid point");
    let expected = point_sim(
        &run_kernel(&kernel.case(48, SEED), &rc).expect("in-process run"),
        rc.system.geometry.fu_count(),
    );

    let url = spawn_server(2);
    let job = JobRequest::DsePoint {
        kernel: "saxpy".into(),
        n: 48,
        rows: 4,
        cols: 4,
        universal: true,
        fifo_depth: 2,
        mem: "perfect".into(),
        unroll: 2,
        run: RunSpec { backend: Some(Backend::Compiled), ..RunSpec::default() },
    };
    match submit(&url, &job) {
        Ok(JobResult::DsePoint { kernel, baseline_cycles, cycles, energy_nj, config_cycles }) => {
            assert_eq!(kernel, "saxpy");
            assert_eq!(baseline_cycles, expected.baseline_cycles);
            assert_eq!(cycles, expected.cycles);
            assert_eq!(config_cycles, expected.config_cycles);
            assert!(
                (energy_nj - expected.energy_nj).abs() < 1e-3,
                "served energy {energy_nj} vs in-process {}",
                expected.energy_nj
            );
        }
        other => panic!("dse-point job failed: {other:?}"),
    }

    // Degenerate geometry comes back as a typed invalid-config error.
    let degenerate = JobRequest::DsePoint {
        kernel: "saxpy".into(),
        n: 16,
        rows: 0,
        cols: 4,
        universal: false,
        fifo_depth: 2,
        mem: "default".into(),
        unroll: 1,
        run: RunSpec::default(),
    };
    match submit(&url, &degenerate) {
        Err(JobError::InvalidConfig(_)) => {}
        other => panic!("expected invalid-config, got {other:?}"),
    }

    // Unknown kernels and memory presets are typed errors too.
    let unknown = JobRequest::DsePoint {
        kernel: "warp-drive".into(),
        n: 16,
        rows: 4,
        cols: 4,
        universal: false,
        fifo_depth: 2,
        mem: "default".into(),
        unroll: 1,
        run: RunSpec::default(),
    };
    match submit(&url, &unknown) {
        Err(JobError::UnknownKernel(_)) => {}
        other => panic!("expected unknown-kernel, got {other:?}"),
    }
    let bad_mem = JobRequest::DsePoint {
        kernel: "saxpy".into(),
        n: 16,
        rows: 4,
        cols: 4,
        universal: false,
        fifo_depth: 2,
        mem: "bogus".into(),
        unroll: 1,
        run: RunSpec::default(),
    };
    match submit(&url, &bad_mem) {
        Err(JobError::InvalidRequest(_)) => {}
        other => panic!("expected invalid-request, got {other:?}"),
    }
}

/// A single-shard daemon flooded with `DsePoint` jobs must drain them
/// into lockstep batches (one worker, many queued connections) and still
/// answer every job with metrics bit-identical to an in-process
/// `run_kernel` of the same point.
#[test]
fn queued_dse_point_jobs_batch_and_stay_bit_identical() {
    let _g = lock();

    let kernel = suite().into_iter().find(|k| k.name == "saxpy").expect("saxpy in suite");
    let points: Vec<DsePoint> = [1usize, 2, 4, 8]
        .iter()
        .map(|&fifo| DsePoint {
            kernel: "saxpy".into(),
            rows: 4,
            cols: 4,
            mix: FuMix::Default,
            fifo_depth: fifo,
            mem: MemPreset::Default,
            unroll: 1,
        })
        .collect();
    let expected: Vec<_> = points
        .iter()
        .map(|p| {
            let rc = p.run_config(&kernel, Some(Backend::Compiled)).expect("valid point");
            point_sim(
                &run_kernel(&kernel.case(48, SEED), &rc).expect("in-process run"),
                rc.system.geometry.fu_count(),
            )
        })
        .collect();

    // One shard: while it works the first job, the rest pile up in the
    // admission queue and get drained into its batch.
    let url = spawn_server(1);
    let jobs: Vec<JobRequest> = points
        .iter()
        .map(|p| JobRequest::DsePoint {
            kernel: "saxpy".into(),
            n: 48,
            rows: p.rows,
            cols: p.cols,
            universal: false,
            fifo_depth: p.fifo_depth,
            mem: "default".into(),
            unroll: p.unroll,
            run: RunSpec { backend: Some(Backend::Compiled), ..RunSpec::default() },
        })
        .collect();
    let outcomes = submit_concurrently(&url, &jobs, jobs.len());
    for (outcome, want) in outcomes.into_iter().zip(&expected) {
        match outcome {
            Ok(JobResult::DsePoint { baseline_cycles, cycles, config_cycles, .. }) => {
                assert_eq!(baseline_cycles, want.baseline_cycles);
                assert_eq!(cycles, want.cycles);
                assert_eq!(config_cycles, want.config_cycles);
            }
            other => panic!("batched dse-point job failed: {other:?}"),
        }
    }
}
