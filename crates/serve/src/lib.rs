//! # dyser-serve
//!
//! Simulation-as-a-service: a daemon that accepts compile+simulate jobs
//! over a socket JSON API and multiplexes them across a pool of worker
//! shards, all sharing the process-wide compile cache — the software
//! analogue of time-sharing one FPGA prototype board among many users.
//!
//! The wire protocol (requests, results, typed errors, the blocking
//! client) lives in `dyser_bench::serve`; this crate is the server side:
//!
//! * [`Server`] — a TCP listener, a bounded admission queue, and
//!   `shards` worker threads draining it. A full queue turns into a
//!   structured `overloaded` reply, not a hung connection.
//! * [`execute_job`] — runs one [`JobRequest`] to completion. Every
//!   failure mode (unknown kernel, impossible hardware description,
//!   compile error, mid-run cycle-budget timeout, output mismatch, even
//!   a worker panic) comes back as a typed [`JobError`]; a job can never
//!   take its shard down.
//!
//! Jobs are bit-identical to in-process runs: a kernel job produces the
//! same `RunStats` (compared by exhaustive `Debug` rendering) as
//! `run_kernel` under the same configuration, and an experiment job
//! returns the exact table text `repro` prints. The integration tests
//! prove both under concurrency.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError, RwLock};
use std::thread;

use dyser_bench::dse::{point_sim, DsePoint, FuMix, MemPreset};
use dyser_bench::experiments::{run_experiment_scaled, PROGRAM_N, SEED};
use dyser_bench::serve::{
    envelope_json, read_http_request, write_http_response, HttpRequest, JobError, JobRequest,
    JobResult, RunSpec, SystemSpec, DEFAULT_JOB_CYCLES,
};
use dyser_bench::{stats_attribution, Scale, EXPERIMENT_IDS};
use dyser_compiler::ir::parser::parse_module;
use dyser_compiler::CompilerOptions;
use dyser_core::{
    compile_cached, run_program_traced, set_backend_override, Backend, HarnessError, KernelCase,
    RunArtifacts, RunConfig,
};
use dyser_fabric::FabricGeometry;
use dyser_sparc::CycleBucket;
use dyser_trace::{chrome_trace_json, TraceRun};
use dyser_workloads::suite;

/// Per-component ring-buffer capacity for jobs that request a trace —
/// the same capacity `repro --trace` uses.
const TRACE_EVENTS: usize = 65_536;

/// Jobs completed by this process (successes and typed failures alike);
/// reported by `GET /health`.
static JOBS_DONE: AtomicU64 = AtomicU64::new(0);

/// Serializes use of the process-global backend override against every
/// other job. An experiment job that needs a non-default global backend
/// (its runs happen deep inside `run_experiment_scaled`, which builds
/// its own `RunConfig`s) takes the write side while the override is set;
/// every other job takes the read side, so it can never observe — or be
/// reconfigured by — another job's override. Kernel and IR jobs never
/// need the override at all: their backend choice travels in their own
/// `RunConfig`.
static BACKEND_GATE: RwLock<()> = RwLock::new(());

// ------------------------------------------------------- configuration

/// Daemon parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker-shard count: jobs executing concurrently.
    pub shards: usize,
    /// Admission-queue depth: accepted connections waiting for a shard.
    /// Beyond this the daemon replies `overloaded` immediately.
    pub queue_depth: usize,
    /// Upper bound on any job's cycle budget. Requests asking for more
    /// are clamped, so one job cannot monopolize a shard indefinitely —
    /// the budget is enforced mid-run by the system's own `Timeout`
    /// plumbing.
    pub max_cycles_cap: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            shards: 4,
            queue_depth: 64,
            max_cycles_cap: DEFAULT_JOB_CYCLES,
        }
    }
}

// ---------------------------------------------------- job execution

/// Renders a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

/// Runs `f` under the backend gate: with `backend` set, exclusively with
/// the process-global override installed (and removed again before the
/// lock drops); otherwise shared. Panics inside `f` become
/// [`JobError::Internal`] — the gate's guards are never poisoned because
/// the unwind is caught inside them.
fn gated<R>(backend: Option<Backend>, f: impl FnOnce() -> R) -> Result<R, JobError> {
    let caught = match backend {
        Some(b) => {
            let _g = BACKEND_GATE.write().unwrap_or_else(PoisonError::into_inner);
            set_backend_override(Some(b));
            let out = catch_unwind(AssertUnwindSafe(f));
            set_backend_override(None);
            out
        }
        None => {
            let _g = BACKEND_GATE.read().unwrap_or_else(PoisonError::into_inner);
            catch_unwind(AssertUnwindSafe(f))
        }
    };
    caught.map_err(|p| JobError::Internal(panic_message(&*p)))
}

/// Builds the `RunConfig` for a kernel or IR job, validating the
/// hardware description up front so impossible configurations (a
/// zero-depth FIFO, a 0×0 or 17×17 fabric) come back as typed
/// `invalid-config` errors instead of construction panics.
fn build_run_config(
    run: &RunSpec,
    system: &SystemSpec,
    max_cycles_cap: u64,
) -> Result<RunConfig, JobError> {
    let mut rc = RunConfig::default();
    let rows = system.rows.unwrap_or(rc.system.geometry.rows());
    let cols = system.cols.unwrap_or(rc.system.geometry.cols());
    rc.system.geometry = FabricGeometry::try_new(rows, cols)
        .map_err(|e| JobError::InvalidConfig(e.to_string()))?;
    if let Some(depth) = system.fifo_depth {
        rc.system.fifo_depth = depth;
    }
    if let Some(has_fabric) = system.has_fabric {
        rc.system.has_fabric = has_fabric;
    }
    rc.system.validate().map_err(|e| JobError::InvalidConfig(e.to_string()))?;
    rc.max_cycles = run.max_cycles.unwrap_or(DEFAULT_JOB_CYCLES).clamp(1, max_cycles_cap);
    rc.stepped = run.stepped;
    if let Some(b) = run.backend {
        rc.backend = b;
    }
    Ok(rc)
}

/// Unwraps one run thread's outcome into the wire taxonomy.
fn join_run(
    joined: thread::Result<Result<RunArtifacts, HarnessError>>,
) -> Result<RunArtifacts, JobError> {
    match joined {
        Ok(Ok(artifacts)) => Ok(artifacts),
        Ok(Err(e)) => Err(JobError::from_harness(&e)),
        Err(p) => Err(JobError::Internal(panic_message(&*p))),
    }
}

/// Compiles `case` through the shared compile cache and runs baseline
/// and accelerated binaries on two scoped threads — the same shape as
/// the in-process `run_kernel`, but returning caller-owned artifacts so
/// concurrent jobs never interleave traces or counters.
fn dual_run(case: &KernelCase, config: &RunConfig, trace: bool) -> Result<JobResult, JobError> {
    let compiled = compile_cached(&case.function, &config.compiler)
        .map_err(|e| JobError::Compile(e.to_string()))?;
    let capacity = if trace { TRACE_EVENTS } else { 0 };
    let (base, dyser) = thread::scope(|s| {
        let base = s.spawn(|| {
            run_program_traced(
                "baseline",
                &compiled.baseline,
                &case.args,
                &case.init,
                &case.expected,
                config,
                capacity,
            )
        });
        let dyser = run_program_traced(
            "dyser",
            &compiled.accelerated,
            &case.args,
            &case.init,
            &case.expected,
            config,
            capacity,
        );
        (join_run(base.join()), dyser.map_err(|e| JobError::from_harness(&e)))
    });
    let base = base?;
    let dyser = dyser?;

    let account = dyser.stats.core.cycle_account();
    let mut buckets: Vec<(String, u64)> = CycleBucket::ALL
        .iter()
        .map(|b| (b.label().to_owned(), account.get(*b)))
        .collect();
    buckets.push(("total".to_owned(), account.total_cycles));

    let trace_json = if trace {
        let runs: Vec<TraceRun> =
            [base.trace, dyser.trace].into_iter().flatten().collect();
        Some(chrome_trace_json(&runs))
    } else {
        None
    };

    Ok(JobResult::Run {
        name: case.name.clone(),
        baseline_cycles: base.stats.cycles,
        dyser_cycles: dyser.stats.cycles,
        speedup: base.stats.cycles as f64 / dyser.stats.cycles.max(1) as f64,
        baseline_stats: format!("{:?}", base.stats),
        dyser_stats: format!("{:?}", dyser.stats),
        buckets,
        trace_json,
    })
}

/// Executes one job to completion.
///
/// # Errors
///
/// Every failure mode maps to a [`JobError`]; this function never
/// panics on malformed or impossible jobs (panics from simulator bugs
/// are caught and surfaced as [`JobError::Internal`]).
pub fn execute_job(job: &JobRequest, max_cycles_cap: u64) -> Result<JobResult, JobError> {
    match job {
        JobRequest::Experiment { id, csv, scale, backend } => {
            if id != "stats" && !EXPERIMENT_IDS.contains(&id.as_str()) {
                return Err(JobError::UnknownExperiment(id.clone()));
            }
            if !(*scale > 0.0 && *scale <= 1.0) {
                return Err(JobError::InvalidRequest(format!(
                    "scale {scale} is outside (0, 1]"
                )));
            }
            let (id, csv, scale) = (id.clone(), *csv, Scale(*scale));
            gated(*backend, move || {
                let table = if id == "stats" {
                    stats_attribution(scale)
                } else {
                    run_experiment_scaled(&id, scale)
                };
                if csv {
                    table.to_csv()
                } else {
                    table.to_string()
                }
            })
            .map(|text| JobResult::Experiment { text })
        }
        JobRequest::Kernel { name, n, run, system } => {
            let Some(kernel) = suite().into_iter().find(|k| k.name == name) else {
                return Err(JobError::UnknownKernel(name.clone()));
            };
            let mut rc = build_run_config(run, system, max_cycles_cap)?;
            rc.compiler = kernel.compiler_options(rc.system.geometry);
            let case = kernel.case(n.unwrap_or(kernel.default_n), SEED);
            gated(None, || dual_run(&case, &rc, run.trace))?
        }
        JobRequest::Ir { text, function, args, init, expected, run, system } => {
            let module = parse_module(text)
                .map_err(|e| JobError::Compile(format!("line {}: {}", e.line, e.message)))?;
            let func = match function {
                Some(name) => module.function(name).ok_or_else(|| {
                    JobError::Compile(format!("module has no function `{name}`"))
                })?,
                None => module
                    .functions
                    .first()
                    .ok_or_else(|| JobError::Compile("module has no functions".into()))?,
            };
            let mut rc = build_run_config(run, system, max_cycles_cap)?;
            rc.compiler = CompilerOptions::for_geometry(rc.system.geometry);
            let case = KernelCase {
                name: func.name().to_owned(),
                function: func.clone(),
                args: args.clone(),
                init: init.clone(),
                expected: expected.clone(),
            };
            gated(None, || dual_run(&case, &rc, run.trace))?
        }
        JobRequest::Program { name, n, run } => {
            let Some(build) = dyser_workloads::programs::by_name(name) else {
                return Err(JobError::UnknownKernel(name.clone()));
            };
            let n = n.unwrap_or(PROGRAM_N);
            if n < 8 || n % 4 != 0 {
                return Err(JobError::InvalidRequest(format!(
                    "program `n` must be a multiple of 4 and at least 8, got {n}"
                )));
            }
            let mut rc = build_run_config(run, &SystemSpec::default(), max_cycles_cap)?;
            rc.system.geometry = FabricGeometry::new(8, 8);
            let case = build(rc.system.geometry, n, SEED)
                .ok_or_else(|| {
                    JobError::InvalidConfig(format!("fabric too small for program `{name}`"))
                })?;
            let outcome = gated(None, || {
                let base = dyser_core::run_whole_program("baseline", &case.baseline, &case, &rc)?;
                let dyser = dyser_core::run_whole_program("dyser", &case.accelerated, &case, &rc)?;
                Ok::<_, HarnessError>((base, dyser))
            })?;
            let (base, dyser) = outcome.map_err(|e| JobError::from_harness(&e))?;
            Ok(JobResult::Program {
                name: name.clone(),
                baseline_cycles: base.stats.cycles,
                dyser_cycles: dyser.stats.cycles,
                speedup: base.stats.cycles as f64 / dyser.stats.cycles.max(1) as f64,
                stdout: String::from_utf8_lossy(&dyser.stdout).into_owned(),
                exit_code: dyser.exit_code,
            })
        }
        JobRequest::DsePoint { .. } => {
            let (case, rc, fu_sites, kernel) = dse_point_inputs(job, max_cycles_cap)?;
            let result = gated(None, || dyser_core::run_kernel(&case, &rc))?
                .map_err(|e| JobError::from_harness(&e))?;
            Ok(dse_point_result(kernel, &point_sim(&result, fu_sites)))
        }
    }
}

/// Resolves a `DsePoint` job into its harness inputs: the kernel case,
/// the run configuration, the FU-site count the energy model scales to,
/// and the kernel name echoed in the result.
fn dse_point_inputs(
    job: &JobRequest,
    max_cycles_cap: u64,
) -> Result<(KernelCase, RunConfig, usize, String), JobError> {
    let JobRequest::DsePoint { kernel, n, rows, cols, universal, fifo_depth, mem, unroll, run } =
        job
    else {
        return Err(JobError::InvalidRequest("not a dse-point job".into()));
    };
    let Some(k) = suite().into_iter().find(|s| s.name == kernel) else {
        return Err(JobError::UnknownKernel(kernel.clone()));
    };
    let mem = MemPreset::parse(mem).map_err(JobError::InvalidRequest)?;
    let point = DsePoint {
        kernel: kernel.clone(),
        rows: *rows,
        cols: *cols,
        mix: if *universal { FuMix::Universal } else { FuMix::Default },
        fifo_depth: *fifo_depth,
        mem,
        unroll: *unroll,
    };
    let mut rc =
        point.run_config(&k, run.backend).map_err(|e| JobError::InvalidConfig(e.to_string()))?;
    rc.max_cycles = run.max_cycles.unwrap_or(DEFAULT_JOB_CYCLES).clamp(1, max_cycles_cap);
    let case = k.case(*n, SEED);
    let fu_sites = rc.system.geometry.fu_count();
    Ok((case, rc, fu_sites, kernel.clone()))
}

/// Shapes one simulated point into the wire result.
fn dse_point_result(kernel: String, sim: &dyser_bench::dse::PointSim) -> JobResult {
    JobResult::DsePoint {
        kernel,
        baseline_cycles: sim.baseline_cycles,
        cycles: sim.cycles,
        energy_nj: sim.energy_nj,
        config_cycles: sim.config_cycles,
    }
}

/// Executes a worker's drained slice of `DsePoint` jobs as one lockstep
/// batch ([`dyser_core::run_kernel_batch`]), bit-identical to running
/// [`execute_job`] on each. Jobs with invalid configurations fail
/// individually without joining the batch; a panic anywhere inside the
/// batch falls the whole slice back to serial execution so the panic is
/// attributed to the job that caused it.
fn execute_dse_batch(
    jobs: &[JobRequest],
    max_cycles_cap: u64,
) -> Vec<Result<JobResult, JobError>> {
    let inputs: Vec<Result<(KernelCase, RunConfig, usize, String), JobError>> =
        jobs.iter().map(|j| dse_point_inputs(j, max_cycles_cap)).collect();
    let runnable: Vec<(KernelCase, RunConfig)> = inputs
        .iter()
        .flatten()
        .map(|(case, rc, _, _)| (case.clone(), rc.clone()))
        .collect();
    match gated(None, || dyser_core::run_kernel_batch(&runnable, 1)) {
        Ok(results) => {
            let mut results = results.into_iter();
            inputs
                .into_iter()
                .map(|input| {
                    let (_, _, fu_sites, kernel) = input?;
                    let result = results
                        .next()
                        .expect("one batch result per runnable job")
                        .map_err(|e| JobError::from_harness(&e))?;
                    Ok(dse_point_result(kernel, &point_sim(&result, fu_sites)))
                })
                .collect()
        }
        Err(_) => jobs.iter().map(|j| execute_job(j, max_cycles_cap)).collect(),
    }
}

// -------------------------------------------------------------- server

/// The bounded hand-off between the acceptor and the worker shards.
struct AdmissionQueue {
    slots: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl AdmissionQueue {
    fn new(depth: usize) -> AdmissionQueue {
        AdmissionQueue {
            slots: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues a connection, or hands it back if the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if slots.len() >= self.depth {
            return Err(stream);
        }
        slots.push_back(stream);
        drop(slots);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available.
    fn pop(&self) -> TcpStream {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = slots.pop_front() {
                return stream;
            }
            slots = self.ready.wait(slots).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes up to `max` already-queued connections without blocking —
    /// the worker-side drain that lets one shard pack compatible queued
    /// jobs into a lockstep batch.
    fn try_drain(&self, max: usize) -> Vec<TcpStream> {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let take = slots.len().min(max);
        slots.drain(..take).collect()
    }
}

/// The daemon's health document.
fn health_json(config: &ServeConfig) -> String {
    format!(
        "{{\"ok\": true, \"shards\": {}, \"queue_depth\": {}, \"max_cycles_cap\": {}, \
         \"jobs_done\": {}}}\n",
        config.shards,
        config.queue_depth,
        config.max_cycles_cap,
        JOBS_DONE.load(Ordering::Relaxed)
    )
}

/// Writes the outcome envelope; a failed write is ignored (the peer is
/// gone and the shard moves on).
fn respond(stream: &mut TcpStream, outcome: &Result<JobResult, JobError>) {
    let status = outcome.as_ref().map_or_else(JobError::http_status, |_| 200);
    let _ = write_http_response(stream, status, &envelope_json(outcome));
}

/// Extra queued connections one worker inspects for batchable
/// companions after it picks up a `DsePoint` job — with the job it
/// already holds, a full drain fills one [`dyser_core::run_kernel_batch`]
/// chunk.
const BATCH_DRAIN: usize = 15;

/// Services one accepted connection end to end. With a queue in hand, a
/// worker that picks up a `DsePoint` job first drains compatible queued
/// jobs and steps the whole slice in lockstep; drained connections that
/// turn out to be anything else are serviced individually (`queue:
/// None`, so a drained batchable job never re-drains).
fn handle_connection(mut stream: TcpStream, queue: Option<&AdmissionQueue>, config: &ServeConfig) {
    let request = match read_http_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            respond(&mut stream, &Err(e));
            return;
        }
    };
    handle_request(stream, &request, queue, config);
}

/// Dispatches one parsed HTTP request.
fn handle_request(
    mut stream: TcpStream,
    request: &HttpRequest,
    queue: Option<&AdmissionQueue>,
    config: &ServeConfig,
) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let _ = write_http_response(&mut stream, 200, &health_json(config));
        }
        ("POST", "/job") => match (JobRequest::parse(&request.body), queue) {
            (Ok(job @ JobRequest::DsePoint { .. }), Some(queue)) => {
                batch_dse(stream, job, queue, config);
            }
            (outcome, _) => {
                let outcome = outcome.and_then(|job| execute_job(&job, config.max_cycles_cap));
                JOBS_DONE.fetch_add(1, Ordering::Relaxed);
                respond(&mut stream, &outcome);
            }
        },
        (_, "/job") => {
            respond(&mut stream, &Err(JobError::Protocol("use POST for /job".into())));
        }
        (_, path) => {
            respond(&mut stream, &Err(JobError::Protocol(format!("no such endpoint `{path}`"))));
        }
    }
}

/// Drains compatible queued jobs behind `job` and executes the slice as
/// one lockstep batch, replying to every member.
fn batch_dse(stream: TcpStream, job: JobRequest, queue: &AdmissionQueue, config: &ServeConfig) {
    let mut members: Vec<(TcpStream, JobRequest)> = vec![(stream, job)];
    for mut extra in queue.try_drain(BATCH_DRAIN) {
        match read_http_request(&mut extra) {
            Ok(req) if req.method == "POST" && req.path == "/job" => {
                match JobRequest::parse(&req.body) {
                    Ok(j @ JobRequest::DsePoint { .. }) => members.push((extra, j)),
                    _ => handle_request(extra, &req, None, config),
                }
            }
            Ok(req) => handle_request(extra, &req, None, config),
            Err(e) => respond(&mut extra, &Err(e)),
        }
    }
    let jobs: Vec<JobRequest> = members.iter().map(|(_, j)| j.clone()).collect();
    let outcomes = execute_dse_batch(&jobs, config.max_cycles_cap);
    for ((mut member, _), outcome) in members.into_iter().zip(outcomes) {
        JOBS_DONE.fetch_add(1, Ordering::Relaxed);
        respond(&mut member, &outcome);
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
}

impl Server {
    /// Binds the listen socket (use port 0 in `config.addr` to let the
    /// OS pick — [`Server::url`] reports the resolved address).
    ///
    /// # Errors
    ///
    /// [`JobError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, JobError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| JobError::Io(format!("bind {}: {e}", config.addr)))?;
        Ok(Server { listener, config })
    }

    /// The resolved listen address.
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen for a
    /// successfully bound listener).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has a local address")
    }

    /// The service URL clients pass to `submit` / `repro --serve`.
    #[must_use]
    pub fn url(&self) -> String {
        format!("http://{}", self.local_addr())
    }

    /// The daemon's configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs the accept loop and worker shards forever (until the
    /// process exits).
    pub fn run(self) {
        let queue = AdmissionQueue::new(self.config.queue_depth);
        let config = &self.config;
        thread::scope(|s| {
            for _ in 0..config.shards.max(1) {
                s.spawn(|| loop {
                    handle_connection(queue.pop(), Some(&queue), config);
                });
            }
            for conn in self.listener.incoming() {
                let Ok(stream) = conn else { continue };
                if let Err(mut rejected) = queue.push(stream) {
                    let err = JobError::Overloaded(format!(
                        "admission queue of depth {} is full",
                        config.queue_depth
                    ));
                    let _ = write_http_response(
                        &mut rejected,
                        err.http_status(),
                        &envelope_json(&Err(err)),
                    );
                }
            }
        });
    }

    /// Starts the daemon on a detached thread and returns its URL —
    /// the in-process form the integration tests (and embedders) use.
    #[must_use]
    pub fn spawn(self) -> String {
        let url = self.url();
        thread::Builder::new()
            .name("dyser-serve".into())
            .spawn(move || self.run())
            .expect("spawn server thread");
        url
    }
}
