//! # dyser-serve
//!
//! Simulation-as-a-service: a daemon that accepts compile+simulate jobs
//! over a socket JSON API and multiplexes them across a pool of worker
//! shards, all sharing the process-wide compile cache — the software
//! analogue of time-sharing one FPGA prototype board among many users.
//!
//! The wire protocol (requests, results, typed errors, the blocking
//! client) lives in `dyser_bench::serve`; this crate is the server side:
//!
//! * [`Server`] — a TCP listener, a bounded admission queue, and
//!   `shards` worker threads draining it. A full queue turns into a
//!   structured `overloaded` reply, not a hung connection.
//! * [`execute_job`] — runs one [`JobRequest`] to completion. Every
//!   failure mode (unknown kernel, impossible hardware description,
//!   compile error, mid-run cycle-budget timeout, output mismatch, even
//!   a worker panic) comes back as a typed [`JobError`]; a job can never
//!   take its shard down.
//!
//! Jobs are bit-identical to in-process runs: a kernel job produces the
//! same `RunStats` (compared by exhaustive `Debug` rendering) as
//! `run_kernel` under the same configuration, and an experiment job
//! returns the exact table text `repro` prints. The integration tests
//! prove both under concurrency.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError, RwLock};
use std::thread;

use dyser_bench::dse::{point_sim, DsePoint, FuMix, MemPreset};
use dyser_bench::experiments::{run_experiment_scaled, SEED};
use dyser_bench::serve::{
    envelope_json, read_http_request, write_http_response, JobError, JobRequest, JobResult,
    RunSpec, SystemSpec, DEFAULT_JOB_CYCLES,
};
use dyser_bench::{stats_attribution, Scale, EXPERIMENT_IDS};
use dyser_compiler::ir::parser::parse_module;
use dyser_compiler::CompilerOptions;
use dyser_core::{
    compile_cached, run_program_traced, set_backend_override, Backend, HarnessError, KernelCase,
    RunArtifacts, RunConfig,
};
use dyser_fabric::FabricGeometry;
use dyser_sparc::CycleBucket;
use dyser_trace::{chrome_trace_json, TraceRun};
use dyser_workloads::suite;

/// Per-component ring-buffer capacity for jobs that request a trace —
/// the same capacity `repro --trace` uses.
const TRACE_EVENTS: usize = 65_536;

/// Jobs completed by this process (successes and typed failures alike);
/// reported by `GET /health`.
static JOBS_DONE: AtomicU64 = AtomicU64::new(0);

/// Serializes use of the process-global backend override against every
/// other job. An experiment job that needs a non-default global backend
/// (its runs happen deep inside `run_experiment_scaled`, which builds
/// its own `RunConfig`s) takes the write side while the override is set;
/// every other job takes the read side, so it can never observe — or be
/// reconfigured by — another job's override. Kernel and IR jobs never
/// need the override at all: their backend choice travels in their own
/// `RunConfig`.
static BACKEND_GATE: RwLock<()> = RwLock::new(());

// ------------------------------------------------------- configuration

/// Daemon parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker-shard count: jobs executing concurrently.
    pub shards: usize,
    /// Admission-queue depth: accepted connections waiting for a shard.
    /// Beyond this the daemon replies `overloaded` immediately.
    pub queue_depth: usize,
    /// Upper bound on any job's cycle budget. Requests asking for more
    /// are clamped, so one job cannot monopolize a shard indefinitely —
    /// the budget is enforced mid-run by the system's own `Timeout`
    /// plumbing.
    pub max_cycles_cap: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            shards: 4,
            queue_depth: 64,
            max_cycles_cap: DEFAULT_JOB_CYCLES,
        }
    }
}

// ---------------------------------------------------- job execution

/// Renders a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

/// Runs `f` under the backend gate: with `backend` set, exclusively with
/// the process-global override installed (and removed again before the
/// lock drops); otherwise shared. Panics inside `f` become
/// [`JobError::Internal`] — the gate's guards are never poisoned because
/// the unwind is caught inside them.
fn gated<R>(backend: Option<Backend>, f: impl FnOnce() -> R) -> Result<R, JobError> {
    let caught = match backend {
        Some(b) => {
            let _g = BACKEND_GATE.write().unwrap_or_else(PoisonError::into_inner);
            set_backend_override(Some(b));
            let out = catch_unwind(AssertUnwindSafe(f));
            set_backend_override(None);
            out
        }
        None => {
            let _g = BACKEND_GATE.read().unwrap_or_else(PoisonError::into_inner);
            catch_unwind(AssertUnwindSafe(f))
        }
    };
    caught.map_err(|p| JobError::Internal(panic_message(&*p)))
}

/// Builds the `RunConfig` for a kernel or IR job, validating the
/// hardware description up front so impossible configurations (a
/// zero-depth FIFO, a 0×0 or 17×17 fabric) come back as typed
/// `invalid-config` errors instead of construction panics.
fn build_run_config(
    run: &RunSpec,
    system: &SystemSpec,
    max_cycles_cap: u64,
) -> Result<RunConfig, JobError> {
    let mut rc = RunConfig::default();
    let rows = system.rows.unwrap_or(rc.system.geometry.rows());
    let cols = system.cols.unwrap_or(rc.system.geometry.cols());
    rc.system.geometry = FabricGeometry::try_new(rows, cols)
        .map_err(|e| JobError::InvalidConfig(e.to_string()))?;
    if let Some(depth) = system.fifo_depth {
        rc.system.fifo_depth = depth;
    }
    if let Some(has_fabric) = system.has_fabric {
        rc.system.has_fabric = has_fabric;
    }
    rc.system.validate().map_err(|e| JobError::InvalidConfig(e.to_string()))?;
    rc.max_cycles = run.max_cycles.unwrap_or(DEFAULT_JOB_CYCLES).clamp(1, max_cycles_cap);
    rc.stepped = run.stepped;
    if let Some(b) = run.backend {
        rc.backend = b;
    }
    Ok(rc)
}

/// Unwraps one run thread's outcome into the wire taxonomy.
fn join_run(
    joined: thread::Result<Result<RunArtifacts, HarnessError>>,
) -> Result<RunArtifacts, JobError> {
    match joined {
        Ok(Ok(artifacts)) => Ok(artifacts),
        Ok(Err(e)) => Err(JobError::from_harness(&e)),
        Err(p) => Err(JobError::Internal(panic_message(&*p))),
    }
}

/// Compiles `case` through the shared compile cache and runs baseline
/// and accelerated binaries on two scoped threads — the same shape as
/// the in-process `run_kernel`, but returning caller-owned artifacts so
/// concurrent jobs never interleave traces or counters.
fn dual_run(case: &KernelCase, config: &RunConfig, trace: bool) -> Result<JobResult, JobError> {
    let compiled = compile_cached(&case.function, &config.compiler)
        .map_err(|e| JobError::Compile(e.to_string()))?;
    let capacity = if trace { TRACE_EVENTS } else { 0 };
    let (base, dyser) = thread::scope(|s| {
        let base = s.spawn(|| {
            run_program_traced(
                "baseline",
                &compiled.baseline,
                &case.args,
                &case.init,
                &case.expected,
                config,
                capacity,
            )
        });
        let dyser = run_program_traced(
            "dyser",
            &compiled.accelerated,
            &case.args,
            &case.init,
            &case.expected,
            config,
            capacity,
        );
        (join_run(base.join()), dyser.map_err(|e| JobError::from_harness(&e)))
    });
    let base = base?;
    let dyser = dyser?;

    let account = dyser.stats.core.cycle_account();
    let mut buckets: Vec<(String, u64)> = CycleBucket::ALL
        .iter()
        .map(|b| (b.label().to_owned(), account.get(*b)))
        .collect();
    buckets.push(("total".to_owned(), account.total_cycles));

    let trace_json = if trace {
        let runs: Vec<TraceRun> =
            [base.trace, dyser.trace].into_iter().flatten().collect();
        Some(chrome_trace_json(&runs))
    } else {
        None
    };

    Ok(JobResult::Run {
        name: case.name.clone(),
        baseline_cycles: base.stats.cycles,
        dyser_cycles: dyser.stats.cycles,
        speedup: base.stats.cycles as f64 / dyser.stats.cycles.max(1) as f64,
        baseline_stats: format!("{:?}", base.stats),
        dyser_stats: format!("{:?}", dyser.stats),
        buckets,
        trace_json,
    })
}

/// Executes one job to completion.
///
/// # Errors
///
/// Every failure mode maps to a [`JobError`]; this function never
/// panics on malformed or impossible jobs (panics from simulator bugs
/// are caught and surfaced as [`JobError::Internal`]).
pub fn execute_job(job: &JobRequest, max_cycles_cap: u64) -> Result<JobResult, JobError> {
    match job {
        JobRequest::Experiment { id, csv, scale, backend } => {
            if id != "stats" && !EXPERIMENT_IDS.contains(&id.as_str()) {
                return Err(JobError::UnknownExperiment(id.clone()));
            }
            if !(*scale > 0.0 && *scale <= 1.0) {
                return Err(JobError::InvalidRequest(format!(
                    "scale {scale} is outside (0, 1]"
                )));
            }
            let (id, csv, scale) = (id.clone(), *csv, Scale(*scale));
            gated(*backend, move || {
                let table = if id == "stats" {
                    stats_attribution(scale)
                } else {
                    run_experiment_scaled(&id, scale)
                };
                if csv {
                    table.to_csv()
                } else {
                    table.to_string()
                }
            })
            .map(|text| JobResult::Experiment { text })
        }
        JobRequest::Kernel { name, n, run, system } => {
            let Some(kernel) = suite().into_iter().find(|k| k.name == name) else {
                return Err(JobError::UnknownKernel(name.clone()));
            };
            let mut rc = build_run_config(run, system, max_cycles_cap)?;
            rc.compiler = kernel.compiler_options(rc.system.geometry);
            let case = kernel.case(n.unwrap_or(kernel.default_n), SEED);
            gated(None, || dual_run(&case, &rc, run.trace))?
        }
        JobRequest::Ir { text, function, args, init, expected, run, system } => {
            let module = parse_module(text)
                .map_err(|e| JobError::Compile(format!("line {}: {}", e.line, e.message)))?;
            let func = match function {
                Some(name) => module.function(name).ok_or_else(|| {
                    JobError::Compile(format!("module has no function `{name}`"))
                })?,
                None => module
                    .functions
                    .first()
                    .ok_or_else(|| JobError::Compile("module has no functions".into()))?,
            };
            let mut rc = build_run_config(run, system, max_cycles_cap)?;
            rc.compiler = CompilerOptions::for_geometry(rc.system.geometry);
            let case = KernelCase {
                name: func.name().to_owned(),
                function: func.clone(),
                args: args.clone(),
                init: init.clone(),
                expected: expected.clone(),
            };
            gated(None, || dual_run(&case, &rc, run.trace))?
        }
        JobRequest::DsePoint { kernel, n, rows, cols, universal, fifo_depth, mem, unroll, run } => {
            let Some(k) = suite().into_iter().find(|s| s.name == kernel) else {
                return Err(JobError::UnknownKernel(kernel.clone()));
            };
            let mem = MemPreset::parse(mem).map_err(JobError::InvalidRequest)?;
            let point = DsePoint {
                kernel: kernel.clone(),
                rows: *rows,
                cols: *cols,
                mix: if *universal { FuMix::Universal } else { FuMix::Default },
                fifo_depth: *fifo_depth,
                mem,
                unroll: *unroll,
            };
            let mut rc = point
                .run_config(&k, run.backend)
                .map_err(|e| JobError::InvalidConfig(e.to_string()))?;
            rc.max_cycles = run.max_cycles.unwrap_or(DEFAULT_JOB_CYCLES).clamp(1, max_cycles_cap);
            let case = k.case(*n, SEED);
            let fu_sites = rc.system.geometry.fu_count();
            let result = gated(None, || dyser_core::run_kernel(&case, &rc))?
                .map_err(|e| JobError::from_harness(&e))?;
            let sim = point_sim(&result, fu_sites);
            Ok(JobResult::DsePoint {
                kernel: kernel.clone(),
                baseline_cycles: sim.baseline_cycles,
                cycles: sim.cycles,
                energy_nj: sim.energy_nj,
                config_cycles: sim.config_cycles,
            })
        }
    }
}

// -------------------------------------------------------------- server

/// The bounded hand-off between the acceptor and the worker shards.
struct AdmissionQueue {
    slots: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl AdmissionQueue {
    fn new(depth: usize) -> AdmissionQueue {
        AdmissionQueue {
            slots: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues a connection, or hands it back if the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if slots.len() >= self.depth {
            return Err(stream);
        }
        slots.push_back(stream);
        drop(slots);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available.
    fn pop(&self) -> TcpStream {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = slots.pop_front() {
                return stream;
            }
            slots = self.ready.wait(slots).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The daemon's health document.
fn health_json(config: &ServeConfig) -> String {
    format!(
        "{{\"ok\": true, \"shards\": {}, \"queue_depth\": {}, \"max_cycles_cap\": {}, \
         \"jobs_done\": {}}}\n",
        config.shards,
        config.queue_depth,
        config.max_cycles_cap,
        JOBS_DONE.load(Ordering::Relaxed)
    )
}

/// Writes the outcome envelope; a failed write is ignored (the peer is
/// gone and the shard moves on).
fn respond(stream: &mut TcpStream, outcome: &Result<JobResult, JobError>) {
    let status = outcome.as_ref().map_or_else(JobError::http_status, |_| 200);
    let _ = write_http_response(stream, status, &envelope_json(outcome));
}

/// Services one accepted connection end to end.
fn handle_connection(mut stream: TcpStream, config: &ServeConfig) {
    let request = match read_http_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            respond(&mut stream, &Err(e));
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let _ = write_http_response(&mut stream, 200, &health_json(config));
        }
        ("POST", "/job") => {
            let outcome = JobRequest::parse(&request.body)
                .and_then(|job| execute_job(&job, config.max_cycles_cap));
            JOBS_DONE.fetch_add(1, Ordering::Relaxed);
            respond(&mut stream, &outcome);
        }
        (_, "/job") => {
            respond(&mut stream, &Err(JobError::Protocol("use POST for /job".into())));
        }
        (_, path) => {
            respond(&mut stream, &Err(JobError::Protocol(format!("no such endpoint `{path}`"))));
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
}

impl Server {
    /// Binds the listen socket (use port 0 in `config.addr` to let the
    /// OS pick — [`Server::url`] reports the resolved address).
    ///
    /// # Errors
    ///
    /// [`JobError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, JobError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| JobError::Io(format!("bind {}: {e}", config.addr)))?;
        Ok(Server { listener, config })
    }

    /// The resolved listen address.
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen for a
    /// successfully bound listener).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has a local address")
    }

    /// The service URL clients pass to `submit` / `repro --serve`.
    #[must_use]
    pub fn url(&self) -> String {
        format!("http://{}", self.local_addr())
    }

    /// The daemon's configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs the accept loop and worker shards forever (until the
    /// process exits).
    pub fn run(self) {
        let queue = AdmissionQueue::new(self.config.queue_depth);
        let config = &self.config;
        thread::scope(|s| {
            for _ in 0..config.shards.max(1) {
                s.spawn(|| loop {
                    handle_connection(queue.pop(), config);
                });
            }
            for conn in self.listener.incoming() {
                let Ok(stream) = conn else { continue };
                if let Err(mut rejected) = queue.push(stream) {
                    let err = JobError::Overloaded(format!(
                        "admission queue of depth {} is full",
                        config.queue_depth
                    ));
                    let _ = write_http_response(
                        &mut rejected,
                        err.http_status(),
                        &envelope_json(&Err(err)),
                    );
                }
            }
        });
    }

    /// Starts the daemon on a detached thread and returns its URL —
    /// the in-process form the integration tests (and embedders) use.
    #[must_use]
    pub fn spawn(self) -> String {
        let url = self.url();
        thread::Builder::new()
            .name("dyser-serve".into())
            .spawn(move || self.run())
            .expect("spawn server thread");
        url
    }
}
