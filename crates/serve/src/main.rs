//! The `dyser-serve` daemon binary.
//!
//! ```text
//! dyser-serve                                   # 127.0.0.1:7878, 4 shards
//! dyser-serve --addr 0.0.0.0:9000 --shards 8
//! dyser-serve --queue 128 --max-cycles 0x5f5e100
//! ```
//!
//! Endpoints: `POST /job` (a JSON job request, see `dyser_bench::serve`)
//! and `GET /health`. Submit jobs with `repro --serve http://host:port`
//! or any HTTP client.

use dyser_serve::{ServeConfig, Server};

/// Parses a `--flag value` pair out of `args`, removing both tokens.
fn take_value<T>(
    args: &mut Vec<String>,
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(v) = args.get(i + 1).and_then(|v| parse(v)) else {
        eprintln!("{flag} requires a valid value");
        std::process::exit(2);
    };
    args.drain(i..=i + 1);
    Some(v)
}

/// Accepts `123` or `0x7b`.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    if let Some(addr) = take_value(&mut args, "--addr", |v| Some(v.to_owned())) {
        config.addr = addr;
    }
    if let Some(shards) = take_value(&mut args, "--shards", |v| {
        v.parse::<usize>().ok().filter(|&n| n > 0)
    }) {
        config.shards = shards;
    }
    if let Some(depth) = take_value(&mut args, "--queue", |v| {
        v.parse::<usize>().ok().filter(|&n| n > 0)
    }) {
        config.queue_depth = depth;
    }
    if let Some(cap) = take_value(&mut args, "--max-cycles", parse_u64) {
        config.max_cycles_cap = cap.max(1);
    }
    if let Some(stray) = args.first() {
        eprintln!(
            "unknown argument `{stray}`; valid: --addr HOST:PORT --shards N --queue N --max-cycles N"
        );
        std::process::exit(2);
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dyser-serve: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "dyser-serve listening on {} ({} shards, queue depth {}, cycle cap {})",
        server.url(),
        server.config().shards,
        server.config().queue_depth,
        server.config().max_cycles_cap
    );
    server.run();
}
