//! # dyser-energy
//!
//! An activity-based energy and power model for the SPARC-DySER system.
//!
//! The prototype measures power on the FPGA board and reports that the
//! DySER fabric consumes **about 200 mW** while delivering its speedups —
//! the basis of the paper's "energy-efficient specialization" claim (E6).
//! Board-level measurement is impossible in simulation, so this crate
//! substitutes the standard architecture-simulation approach: per-event
//! energies multiplied by activity counters, plus leakage, at the
//! prototype's 50 MHz clock. The default constants are calibrated so that
//!
//! * a busy 8x8 fabric dissipates ≈ 200 mW,
//! * the OpenSPARC-class core dissipates 1.5–2.5 W under load,
//!
//! matching the prototype's published operating point. Absolute joules are
//! model outputs, not measurements; the evaluation compares *ratios*
//! (energy and energy-delay between baseline and accelerated runs), which
//! are robust to the calibration constants.
//!
//! ```
//! use dyser_energy::{Activity, EnergyModel};
//!
//! let model = EnergyModel::default();
//! let mut busy = Activity { cycles: 1_000_000, ..Default::default() };
//! busy.fabric_int_ops = 4_000_000;
//! busy.fabric_fp_ops = 4_000_000;
//! busy.fabric_switch_hops = 30_000_000;
//! let report = model.estimate(&busy);
//! assert!(report.fabric_power_mw > 100.0 && report.fabric_power_mw < 500.0);
//! ```


#![warn(missing_docs)]
use std::fmt;

/// Activity counters consumed by the model (all raw event counts).
///
/// The system crate converts its run statistics into this form; the
/// struct is kept dependency-free so the model is usable standalone.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Activity {
    /// Total cycles of the run.
    pub cycles: u64,
    /// Simple integer instructions retired.
    pub core_int_ops: u64,
    /// Integer multiply/divide instructions retired.
    pub core_muldiv_ops: u64,
    /// Floating-point instructions retired.
    pub core_fp_ops: u64,
    /// Loads retired.
    pub core_loads: u64,
    /// Stores retired.
    pub core_stores: u64,
    /// Branches retired.
    pub core_branches: u64,
    /// DySER interface instructions retired.
    pub core_dyser_ops: u64,
    /// Other instructions retired.
    pub core_other_ops: u64,
    /// L1 (instruction + data) accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Integer FU firings in the fabric.
    pub fabric_int_ops: u64,
    /// Floating-point FU firings in the fabric.
    pub fabric_fp_ops: u64,
    /// Switch-register hops (including fan-out copies).
    pub fabric_switch_hops: u64,
    /// Values crossing the port interface (in + out).
    pub fabric_port_transfers: u64,
    /// Configuration bits streamed.
    pub fabric_config_bits: u64,
}

impl Activity {
    /// Total core instructions.
    pub fn core_instructions(&self) -> u64 {
        self.core_int_ops
            + self.core_muldiv_ops
            + self.core_fp_ops
            + self.core_loads
            + self.core_stores
            + self.core_branches
            + self.core_dyser_ops
            + self.core_other_ops
    }
}

/// Per-event energies (picojoules) and leakage (milliwatts).
///
/// Defaults are calibrated to the prototype's operating point; see the
/// crate documentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Clock frequency in MHz (the prototype runs at 50 MHz).
    pub clock_mhz: f64,
    /// Simple integer instruction energy (pJ).
    pub core_int_pj: f64,
    /// Integer multiply/divide instruction energy (pJ).
    pub core_muldiv_pj: f64,
    /// Floating-point instruction energy (pJ).
    pub core_fp_pj: f64,
    /// Load/store instruction energy, excluding the cache access (pJ).
    pub core_mem_pj: f64,
    /// Branch instruction energy (pJ).
    pub core_branch_pj: f64,
    /// DySER interface instruction energy (pJ).
    pub core_dyser_pj: f64,
    /// Per-cycle core pipeline overhead — fetch, decode, clocking (pJ).
    pub core_cycle_pj: f64,
    /// Core leakage (mW).
    pub core_leakage_mw: f64,
    /// L1 access energy (pJ).
    pub l1_pj: f64,
    /// L2 access energy (pJ).
    pub l2_pj: f64,
    /// DRAM access energy (pJ).
    pub dram_pj: f64,
    /// Fabric integer FU firing energy (pJ).
    pub fu_int_pj: f64,
    /// Fabric floating-point FU firing energy (pJ).
    pub fu_fp_pj: f64,
    /// Switch-register hop energy (pJ).
    pub switch_hop_pj: f64,
    /// Port transfer energy (pJ).
    pub port_pj: f64,
    /// Configuration energy per bit (pJ).
    pub config_bit_pj: f64,
    /// Fabric leakage while configured (mW).
    pub fabric_leakage_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            clock_mhz: 50.0,
            core_int_pj: 400.0,
            core_muldiv_pj: 1500.0,
            core_fp_pj: 2200.0,
            core_mem_pj: 500.0,
            core_branch_pj: 350.0,
            core_dyser_pj: 250.0,
            core_cycle_pj: 14000.0,
            core_leakage_mw: 450.0,
            l1_pj: 300.0,
            l2_pj: 1200.0,
            dram_pj: 8000.0,
            fu_int_pj: 200.0,
            fu_fp_pj: 450.0,
            switch_hop_pj: 60.0,
            port_pj: 100.0,
            config_bit_pj: 6.0,
            // On the FPGA the configured fabric region is clocked whether
            // or not values flow; that near-constant component dominates
            // the prototype's ~200 mW measurement.
            fabric_leakage_mw: 160.0,
        }
    }
}

/// The energy/power estimate for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Run time in seconds at the model clock.
    pub runtime_s: f64,
    /// Core dynamic + leakage energy (nJ).
    pub core_nj: f64,
    /// Memory-system energy (nJ).
    pub mem_nj: f64,
    /// Fabric dynamic + leakage energy (nJ).
    pub fabric_nj: f64,
    /// Total energy (nJ).
    pub total_nj: f64,
    /// Average core power (mW).
    pub core_power_mw: f64,
    /// Average fabric power (mW).
    pub fabric_power_mw: f64,
    /// Average total power (mW).
    pub total_power_mw: f64,
    /// Energy-delay product (nJ * s).
    pub edp: f64,
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} uJ ({:.0} mW; core {:.0} mW, fabric {:.0} mW)",
            self.total_nj / 1000.0,
            self.total_power_mw,
            self.core_power_mw,
            self.fabric_power_mw
        )
    }
}

/// The activity-based energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    /// Model parameters.
    pub params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with explicit parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// Estimates energy and average power for one run's activity.
    pub fn estimate(&self, a: &Activity) -> EnergyReport {
        let p = &self.params;
        let runtime_s = a.cycles as f64 / (p.clock_mhz * 1e6);

        let core_dyn_pj = a.core_int_ops as f64 * p.core_int_pj
            + a.core_muldiv_ops as f64 * p.core_muldiv_pj
            + a.core_fp_ops as f64 * p.core_fp_pj
            + (a.core_loads + a.core_stores) as f64 * p.core_mem_pj
            + a.core_branches as f64 * p.core_branch_pj
            + a.core_dyser_ops as f64 * p.core_dyser_pj
            + a.core_other_ops as f64 * p.core_int_pj
            + a.cycles as f64 * p.core_cycle_pj;
        let core_nj = core_dyn_pj / 1000.0 + p.core_leakage_mw * runtime_s * 1e6;

        let mem_pj = a.l1_accesses as f64 * p.l1_pj
            + a.l2_accesses as f64 * p.l2_pj
            + a.dram_accesses as f64 * p.dram_pj;
        let mem_nj = mem_pj / 1000.0;

        let fabric_dyn_pj = a.fabric_int_ops as f64 * p.fu_int_pj
            + a.fabric_fp_ops as f64 * p.fu_fp_pj
            + a.fabric_switch_hops as f64 * p.switch_hop_pj
            + a.fabric_port_transfers as f64 * p.port_pj
            + a.fabric_config_bits as f64 * p.config_bit_pj;
        let fabric_active = a.fabric_int_ops
            + a.fabric_fp_ops
            + a.fabric_switch_hops
            + a.fabric_port_transfers
            + a.fabric_config_bits
            > 0;
        let fabric_leak_nj =
            if fabric_active { p.fabric_leakage_mw * runtime_s * 1e6 } else { 0.0 };
        let fabric_nj = fabric_dyn_pj / 1000.0 + fabric_leak_nj;

        let total_nj = core_nj + mem_nj + fabric_nj;
        let to_mw = |nj: f64| if runtime_s > 0.0 { nj / (runtime_s * 1e6) } else { 0.0 };
        EnergyReport {
            runtime_s,
            core_nj,
            mem_nj,
            fabric_nj,
            total_nj,
            core_power_mw: to_mw(core_nj),
            fabric_power_mw: to_mw(fabric_nj),
            total_power_mw: to_mw(total_nj),
            edp: total_nj * runtime_s,
        }
    }

    /// The FU-site count of the fabric the default leakage constant is
    /// calibrated against (the prototype's 8x8 grid).
    pub const CALIBRATION_FU_SITES: usize = 64;

    /// Estimates energy for a run on a fabric with `fu_sites` FU sites.
    ///
    /// [`EnergyModel::estimate`] charges the calibrated 8x8 fabric's
    /// leakage regardless of geometry, which is the right thing for the
    /// fixed-geometry E-suite but systematically overtaxes small grids in
    /// a design-space sweep (a 2x2 fabric clocks 1/16 of the region).
    /// This variant scales the leakage component by
    /// `fu_sites / CALIBRATION_FU_SITES`; dynamic per-event energies are
    /// already proportional to activity and are left alone. With
    /// `fu_sites == CALIBRATION_FU_SITES` the result is identical to
    /// [`EnergyModel::estimate`].
    pub fn estimate_for_geometry(&self, a: &Activity, fu_sites: usize) -> EnergyReport {
        let scale = fu_sites as f64 / Self::CALIBRATION_FU_SITES as f64;
        let scaled = EnergyModel {
            params: EnergyParams {
                fabric_leakage_mw: self.params.fabric_leakage_mw * scale,
                ..self.params
            },
        };
        scaled.estimate(a)
    }

    /// Energy (nJ) of streaming a configuration frame of `bits` bits over
    /// the config bus — the fixed cost a design-space point pays before
    /// its first invocation, isolated so sweeps can weigh configuration
    /// overhead as its own axis.
    pub fn config_load_energy_nj(&self, bits: u64) -> f64 {
        bits as f64 * self.params.config_bit_pj / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A representative busy-fabric activity: per cycle ≈ 8 FU firings and
    /// 30 hops, matching an 8x8 fabric running a mapped region.
    fn busy_fabric(cycles: u64) -> Activity {
        Activity {
            cycles,
            fabric_int_ops: 4 * cycles,
            fabric_fp_ops: 4 * cycles,
            fabric_switch_hops: 30 * cycles,
            fabric_port_transfers: 6 * cycles,
            ..Default::default()
        }
    }

    #[test]
    fn busy_fabric_power_close_to_200mw() {
        let model = EnergyModel::default();
        let report = model.estimate(&busy_fabric(1_000_000));
        assert!(
            (150.0..=450.0).contains(&report.fabric_power_mw),
            "fabric power {:.0} mW should sit in the prototype's class",
            report.fabric_power_mw
        );
    }

    #[test]
    fn idle_fabric_consumes_nothing() {
        let model = EnergyModel::default();
        let a = Activity { cycles: 1_000_000, core_int_ops: 900_000, ..Default::default() };
        let report = model.estimate(&a);
        assert_eq!(report.fabric_nj, 0.0, "no activity, no configured leakage");
    }

    #[test]
    fn core_power_in_watt_class() {
        let model = EnergyModel::default();
        // CPI ~2 core: half the cycles retire an instruction.
        let cycles = 2_000_000u64;
        let a = Activity {
            cycles,
            core_int_ops: 600_000,
            core_loads: 200_000,
            core_stores: 100_000,
            core_branches: 100_000,
            l1_accesses: 1_300_000,
            l2_accesses: 40_000,
            dram_accesses: 5_000,
            ..Default::default()
        };
        let report = model.estimate(&a);
        assert!(
            (800.0..=3000.0).contains(&report.core_power_mw),
            "core power {:.0} mW should be watt-class",
            report.core_power_mw
        );
    }

    #[test]
    fn energy_scales_linearly_with_activity() {
        let model = EnergyModel::default();
        let r1 = model.estimate(&busy_fabric(1_000_000));
        let r2 = model.estimate(&busy_fabric(2_000_000));
        let ratio = r2.total_nj / r1.total_nj;
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!((r2.fabric_power_mw - r1.fabric_power_mw).abs() < 1e-9, "power is intensive");
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        let model = EnergyModel::default();
        let r = model.estimate(&busy_fabric(1_000_000));
        assert!((r.edp - r.total_nj * r.runtime_s).abs() < 1e-9);
    }

    #[test]
    fn report_displays() {
        let model = EnergyModel::default();
        let text = model.estimate(&busy_fabric(1_000)).to_string();
        assert!(text.contains("mW"));
    }

    #[test]
    fn energy_is_monotonic_in_every_counter() {
        // Adding events of any kind must never make a run cheaper. Start
        // from a base where everything is nonzero (so the fabric-active
        // leakage threshold is already crossed and the check isolates the
        // per-event terms) and bump each counter in turn.
        let model = EnergyModel::default();
        let base = Activity {
            cycles: 10_000,
            core_int_ops: 1000,
            core_muldiv_ops: 100,
            core_fp_ops: 100,
            core_loads: 400,
            core_stores: 200,
            core_branches: 300,
            core_dyser_ops: 150,
            core_other_ops: 50,
            l1_accesses: 600,
            l2_accesses: 40,
            dram_accesses: 5,
            fabric_int_ops: 2000,
            fabric_fp_ops: 1000,
            fabric_switch_hops: 9000,
            fabric_port_transfers: 1500,
            fabric_config_bits: 4096,
        };
        let base_nj = model.estimate(&base).total_nj;
        #[allow(clippy::type_complexity)]
        let bumps: [(&str, fn(&mut Activity)); 16] = [
            ("cycles", |a| a.cycles += 1000),
            ("core_int_ops", |a| a.core_int_ops += 1000),
            ("core_muldiv_ops", |a| a.core_muldiv_ops += 1000),
            ("core_fp_ops", |a| a.core_fp_ops += 1000),
            ("core_loads", |a| a.core_loads += 1000),
            ("core_stores", |a| a.core_stores += 1000),
            ("core_branches", |a| a.core_branches += 1000),
            ("core_dyser_ops", |a| a.core_dyser_ops += 1000),
            ("core_other_ops", |a| a.core_other_ops += 1000),
            ("l1_accesses", |a| a.l1_accesses += 1000),
            ("l2_accesses", |a| a.l2_accesses += 1000),
            ("dram_accesses", |a| a.dram_accesses += 1000),
            ("fabric_int_ops", |a| a.fabric_int_ops += 1000),
            ("fabric_fp_ops", |a| a.fabric_fp_ops += 1000),
            ("fabric_switch_hops", |a| a.fabric_switch_hops += 1000),
            ("fabric_port_transfers", |a| a.fabric_port_transfers += 1000),
        ];
        for (name, bump) in bumps {
            let mut a = base;
            bump(&mut a);
            let nj = model.estimate(&a).total_nj;
            assert!(nj > base_nj, "{name}: {nj} nJ should exceed the base {base_nj} nJ");
        }
        let mut a = base;
        a.fabric_config_bits += 4096;
        assert!(model.estimate(&a).total_nj > base_nj, "config bits cost energy");
    }

    #[test]
    fn geometry_estimate_matches_calibration_at_64_sites() {
        let model = EnergyModel::default();
        let a = busy_fabric(1_000_000);
        let base = model.estimate(&a);
        let same = model.estimate_for_geometry(&a, EnergyModel::CALIBRATION_FU_SITES);
        assert_eq!(base, same, "64 FU sites is the calibration point");
    }

    #[test]
    fn geometry_estimate_scales_leakage_only() {
        let model = EnergyModel::default();
        let a = busy_fabric(1_000_000);
        let big = model.estimate_for_geometry(&a, 64);
        let small = model.estimate_for_geometry(&a, 4);
        assert!(small.fabric_nj < big.fabric_nj, "a 2x2 grid leaks less than an 8x8");
        assert_eq!(small.core_nj, big.core_nj, "core energy is geometry-independent");
        assert_eq!(small.mem_nj, big.mem_nj, "memory energy is geometry-independent");
        // The delta is exactly the leakage scaling.
        let p = EnergyParams::default();
        let runtime_s = big.runtime_s;
        let expect = p.fabric_leakage_mw * runtime_s * 1e6 * (1.0 - 4.0 / 64.0);
        assert!((big.fabric_nj - small.fabric_nj - expect).abs() < 1e-6);
    }

    #[test]
    fn config_load_energy_tracks_frame_bits() {
        let model = EnergyModel::default();
        assert_eq!(model.config_load_energy_nj(0), 0.0);
        let one_kbit = model.config_load_energy_nj(1024);
        assert!((one_kbit - 1024.0 * model.params.config_bit_pj / 1000.0).abs() < 1e-12);
        assert!(model.config_load_energy_nj(2048) > one_kbit);
    }

    #[test]
    fn activity_totals() {
        let a = Activity {
            core_int_ops: 1,
            core_muldiv_ops: 2,
            core_fp_ops: 3,
            core_loads: 4,
            core_stores: 5,
            core_branches: 6,
            core_dyser_ops: 7,
            core_other_ops: 8,
            ..Default::default()
        };
        assert_eq!(a.core_instructions(), 36);
    }
}
