//! # dyser-trace
//!
//! The opt-in event-tracing layer of the simulator: a fixed-capacity
//! ring buffer of timestamped [`TraceEvent`]s plus a Chrome
//! `trace_event` JSON exporter (load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>).
//!
//! Tracing is strictly opt-in. Components hold an
//! `Option<Box<TraceBuffer>>` that is `None` unless tracing was enabled
//! for the run, so the disabled path costs a single branch per would-be
//! event — no allocation, no buffering, no formatting (the
//! "zero-cost when disabled" guarantee documented in `DESIGN.md`).
//!
//! The crate is dependency-free; the JSON is hand-written and a small
//! validating parser ([`validate_json`]) backs the test suite and the CI
//! smoke check.

#![warn(missing_docs)]

/// The kinds of events the simulator records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An instruction retired in the core. `arg` is the PC, `detail` the
    /// instruction-class index (as in `dyser_isa::InstrClass::ALL`).
    InstrRetire,
    /// A functional unit fired in the fabric. `arg` is the FU's linear
    /// index, `detail` is [`detail::FIRE_INT`] or [`detail::FIRE_FP`].
    FabricFire,
    /// A value crossed a DySER port. `arg` is the port number, `detail`
    /// is [`detail::PORT_IN`] or [`detail::PORT_OUT`].
    PortTransfer,
    /// A cache level missed. `arg` is the address, `detail` one of
    /// [`detail::MISS_L1I`], [`detail::MISS_L1D`], [`detail::MISS_L2`].
    CacheMiss,
}

/// Interpretations of [`TraceEvent::detail`] per [`EventKind`].
pub mod detail {
    /// [`super::EventKind::FabricFire`]: an integer functional unit.
    pub const FIRE_INT: u32 = 0;
    /// [`super::EventKind::FabricFire`]: a floating-point functional unit.
    pub const FIRE_FP: u32 = 1;
    /// [`super::EventKind::PortTransfer`]: value entered an input port.
    pub const PORT_IN: u32 = 0;
    /// [`super::EventKind::PortTransfer`]: value left an output port.
    pub const PORT_OUT: u32 = 1;
    /// [`super::EventKind::CacheMiss`]: instruction L1 miss.
    pub const MISS_L1I: u32 = 0;
    /// [`super::EventKind::CacheMiss`]: data L1 miss.
    pub const MISS_L1D: u32 = 1;
    /// [`super::EventKind::CacheMiss`]: shared L2 miss (DRAM access).
    pub const MISS_L2: u32 = 2;
}

impl EventKind {
    /// The Chrome trace category ("thread") this kind renders under.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::InstrRetire => "core",
            EventKind::FabricFire => "fabric",
            EventKind::PortTransfer => "port",
            EventKind::CacheMiss => "mem",
        }
    }

    /// A short event name; `detail` refines it where meaningful.
    pub fn name(self, detail: u32) -> &'static str {
        match (self, detail) {
            (EventKind::InstrRetire, _) => "retire",
            (EventKind::FabricFire, detail::FIRE_FP) => "fire-fp",
            (EventKind::FabricFire, _) => "fire-int",
            (EventKind::PortTransfer, detail::PORT_OUT) => "port-out",
            (EventKind::PortTransfer, _) => "port-in",
            (EventKind::CacheMiss, detail::MISS_L1D) => "miss-l1d",
            (EventKind::CacheMiss, detail::MISS_L2) => "miss-l2",
            (EventKind::CacheMiss, _) => "miss-l1i",
        }
    }
}

/// One timestamped simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (PC, FU index, port number, address).
    pub arg: u64,
    /// Kind-specific refinement (see [`detail`]).
    pub detail: u32,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are overwritten and counted in
/// [`TraceBuffer::dropped`] — a bounded-memory guarantee that lets long
/// runs be traced without growing without bound.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer { events: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    /// Records one event, overwriting the oldest if the buffer is full.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that were overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn into_ordered(self) -> Vec<TraceEvent> {
        let TraceBuffer { mut events, head, .. } = self;
        events.rotate_left(head);
        events
    }
}

/// The merged trace of one simulated run, labelled for the exporter.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Display label (kernel and variant, e.g. `"fft/dyser"`).
    pub label: String,
    /// Events oldest-first (as produced by [`TraceBuffer::into_ordered`]).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer wrap-around across the run's buffers.
    pub dropped: u64,
}

/// Escapes `s` for embedding inside a JSON string literal (no
/// surrounding quotes). Shared by the trace exporter and the serve
/// protocol's hand-written JSON writers.
#[must_use]
pub fn json_escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_json(s, &mut out);
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders runs as a Chrome `trace_event` JSON document.
///
/// Each run becomes one "process" (pid), each event category one
/// "thread" within it; timestamps are simulated cycles interpreted as
/// microseconds. The output is the object form
/// (`{"traceEvents": [...]}`), which both `chrome://tracing` and
/// Perfetto accept.
pub fn chrome_trace_json(runs: &[TraceRun]) -> String {
    const CATEGORIES: [&str; 4] = ["core", "fabric", "port", "mem"];
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    let mut first = true;
    let push_event = |out: &mut String, first: &mut bool, body: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n    ");
        out.push_str(&body);
    };
    for (i, run) in runs.iter().enumerate() {
        let pid = i + 1;
        let mut name = String::new();
        escape_json(&run.label, &mut name);
        push_event(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
        for (tid, cat) in CATEGORIES.iter().enumerate() {
            push_event(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{cat}\"}}}}"
                ),
            );
        }
        for ev in &run.events {
            let cat = ev.kind.category();
            let tid = CATEGORIES.iter().position(|c| *c == cat).unwrap_or(0);
            push_event(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{},\"detail\":{}}}}}",
                    ev.kind.name(ev.detail),
                    ev.cycle,
                    ev.arg,
                    ev.detail
                ),
            );
        }
    }
    out.push_str("\n  ],\n  \"metadata\": {");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut name = String::new();
        escape_json(&run.label, &mut name);
        out.push_str(&format!(
            "\n    \"run{}\": {{\"label\": \"{name}\", \"events\": {}, \"dropped\": {}}}",
            i + 1,
            run.events.len(),
            run.dropped
        ));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// A parsed JSON value.
///
/// Object members keep their document order (a `Vec` of pairs rather
/// than a map), so round-tripping and error messages stay predictable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for integers < 2^53).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a member of an object; `None` for other variants or a
    /// missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if this is a number
    /// with an exact `u64` representation.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a single well-formed JSON document into a [`JsonValue`].
///
/// A minimal recursive-descent parser (objects, arrays, strings,
/// numbers, booleans, null) — enough for the serve protocol's job
/// requests and the test suite, without pulling in a JSON dependency.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

/// Validates that `s` is a single well-formed JSON document.
///
/// # Errors
///
/// Returns the first syntax error (see [`parse_json`]).
pub fn validate_json(s: &str) -> Result<(), String> {
    parse_json(s).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > 128 {
        return Err("nesting too deep".into());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            let mut members = Vec::new();
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            let mut items = Vec::new();
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null").map(|()| JsonValue::Null),
        Some(_) => parse_number(b, pos).map(JsonValue::Num),
    }
}

/// Reads the four hex digits after a `\u`, leaving `pos` on the last one.
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 >= b.len() || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit) {
        return Err(format!("bad \\u escape at byte {pos}"));
    }
    let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).expect("hex digits are ascii");
    let code = u32::from_str_radix(hex, 16).expect("validated hex");
    *pos += 4;
    Ok(code)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // A high surrogate must pair with a \uXXXX
                            // low surrogate immediately after it.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!("unpaired surrogate at byte {pos}"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(format!("unpaired surrogate at byte {pos}"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point at byte {pos}"))?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {pos}")),
            _ => {
                // Copy one whole UTF-8 scalar (the input is a &str, so
                // the bytes are valid UTF-8 by construction).
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&b[*pos..*pos + len]).expect("valid utf-8 input");
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad fraction at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad exponent at byte {pos}"));
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .expect("number bytes are ascii")
        .parse()
        .map_err(|e| format!("unparsable number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind, arg: u64, detail: u32) -> TraceEvent {
        TraceEvent { cycle, kind, arg, detail }
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.record(ev(i, EventKind::InstrRetire, i * 4, 0));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let cycles: Vec<u64> = buf.into_ordered().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_buffer_partial_fill_in_order() {
        let mut buf = TraceBuffer::new(8);
        buf.record(ev(1, EventKind::CacheMiss, 0x100, detail::MISS_L1D));
        buf.record(ev(2, EventKind::FabricFire, 3, detail::FIRE_FP));
        assert_eq!(buf.dropped(), 0);
        let evs = buf.into_ordered();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cycle, 1);
        assert_eq!(evs[1].kind, EventKind::FabricFire);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let runs = vec![
            TraceRun {
                label: "kernel \"a\"/dyser\n".into(),
                events: vec![
                    ev(0, EventKind::InstrRetire, 0x1000, 0),
                    ev(1, EventKind::PortTransfer, 2, detail::PORT_IN),
                    ev(5, EventKind::FabricFire, 0, detail::FIRE_INT),
                    ev(9, EventKind::CacheMiss, 0x2000, detail::MISS_L2),
                ],
                dropped: 0,
            },
            TraceRun { label: "empty".into(), events: vec![], dropped: 7 },
        ];
        let json = chrome_trace_json(&runs);
        validate_json(&json).expect("exporter output must parse");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("fire-int"));
        assert!(json.contains("miss-l2"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\": [1, 2.5, -3e+2, true, null, \"x\\u0041\"]}").is_ok());
        assert!(validate_json("[]").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("{\"a\": 1} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_ok()); // lenient: leading zeros allowed
        assert!(validate_json("{1: 2}").is_err());
    }

    #[test]
    fn parser_produces_values() {
        let v = parse_json("{\"a\": [1, 2.5, true, null], \"s\": \"x\\n\\u0041\\ud83d\\ude00\"}")
            .expect("parses");
        assert_eq!(v.get("a").and_then(|a| a.as_array()).map(<[JsonValue]>::len), Some(4));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_bool(), Some(true));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\nA\u{1f600}"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse_json("-3e2").unwrap().as_f64(), Some(-300.0));
        assert!(parse_json("\"\\ud800\"").is_err(), "unpaired surrogate must be rejected");
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode \u{1f600}";
        let doc = format!("{{\"k\": \"{}\"}}", json_escaped(nasty));
        let v = parse_json(&doc).expect("escaped string parses");
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(nasty));
    }
}
