//! Driving the DySER fabric directly: hand-build a configuration with the
//! place-and-route builder, stream values through it, and inspect the
//! microarchitectural statistics — no compiler, no core.
//!
//! ```text
//! cargo run --release --example custom_fabric
//! ```

use sparc_dyser::fabric::{ConfigBuilder, Fabric, FabricGeometry, FuOp, StructuralStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = FabricGeometry::new(4, 4);

    // Structural view (experiment E1's row for this geometry).
    let kinds: Vec<_> = geom
        .fus()
        .map(|f| sparc_dyser::fabric::FuKind::default_pattern(f.row, f.col))
        .collect();
    let s = StructuralStats::compute(geom, &kinds);
    println!(
        "fabric {}: {} FUs, {} switches, {} links, {}/{} ports, {} config bits",
        s.geometry, s.fus, s.switches, s.links, s.input_ports, s.output_ports, s.frame_bits
    );

    // A compound functional unit: out = (a + b) * (a - b), plus a
    // predicated lane: out2 = sel ? a : b.
    let mut builder = ConfigBuilder::new(geom);
    builder.set_name("handmade");
    let a = builder.input_value(0);
    let b = builder.input_value(1);
    let sel = builder.input_value(2);
    let sum = builder.op(FuOp::IAdd, &[a, b]);
    let diff = builder.op(FuOp::ISub, &[a, b]);
    let prod = builder.op(FuOp::IMul, &[sum, diff]);
    let picked = builder.op(FuOp::Select, &[a, b, sel]);
    builder.output_value(prod, 0);
    builder.output_value(picked, 1);
    let config = builder.build()?;
    println!(
        "configuration `{}`: {} FUs configured, {} routes, {} bits ({} cycles to load)",
        config.name(),
        config.configured_fus(),
        config.configured_routes(),
        config.frame_bits(),
        config.frame_bits().div_ceil(64),
    );

    // Execute: stream eight pipelined invocations through it, sending one
    // operand set per cycle and draining results as they emerge in order.
    let mut fabric = Fabric::new(geom);
    fabric.load_config(&config)?;
    println!("\n  a   b  sel | (a+b)*(a-b)  sel?a:b");
    let inputs: Vec<(u64, u64, u64)> =
        (0..8u64).map(|i| (10 + i, 3 + i, i % 2)).collect();
    let mut cursor = 0usize;
    let mut results: Vec<(u64, u64)> = Vec::new();
    let mut prods = Vec::new();
    let mut picks = Vec::new();
    for _ in 0..500 {
        if cursor < inputs.len() && fabric.input_free(0) > 0 && fabric.input_free(1) > 0 && fabric.input_free(2) > 0 {
            let (x, y, c) = inputs[cursor];
            assert!(fabric.try_send(0, x) && fabric.try_send(1, y) && fabric.try_send(2, c));
            cursor += 1;
        }
        fabric.tick();
        while let Some(p) = fabric.try_recv(0) {
            prods.push(p);
        }
        while let Some(q) = fabric.try_recv(1) {
            picks.push(q);
        }
        while results.len() < prods.len().min(picks.len()) {
            results.push((prods[results.len()], picks[results.len()]));
        }
        if results.len() == inputs.len() {
            break;
        }
    }
    for ((x, y, c), (p, q)) in inputs.iter().zip(&results) {
        println!("{x:3} {y:3} {c:4} | {p:11}  {q:7}");
        assert_eq!(*p, (x + y) * (x - y), "compound unit computes correctly");
        assert_eq!(*q, if *c != 0 { *x } else { *y });
    }

    let st = fabric.stats();
    println!(
        "\nactivity: {} FU firings, {} switch hops, {} values in, {} out, occupancy {:.0}%",
        st.fu_fires(),
        st.switch_hops,
        st.port_in,
        st.port_out,
        100.0 * st.occupancy()
    );
    Ok(())
}
