//! A small "application": a two-stage signal chain — a 4-tap FIR filter
//! followed by a clamp — written as one IR function with two loops. The
//! compiler accelerates *both* loops as separate regions, and the fabric
//! reconfigures between them at run time (the prototype's configuration
//! switching, sped up by the configuration cache).
//!
//! ```text
//! cargo run --release --example app_pipeline
//! ```

use sparc_dyser::compiler::ir::parser::parse_module;
use sparc_dyser::compiler::{compile, CompilerOptions};
use sparc_dyser::core::{run_program, RunConfig};

const APP: &str = r"
// stage 1: c[i] = 0.25*a[i] + 0.5*a[i+1] + 0.25*a[i+2]
// stage 2: c[i] = min(max(c[i], -1.0), 1.0)
func @fir_clamp(%a: ptr, %c: ptr, %n: i64) {
entry:
  br fir
fir:
  %i = phi i64 [0, entry] [%i2, fir]
  %i1 = add %i, 1
  %iq = add %i, 2
  %p0 = gep %a, %i, 8
  %p1 = gep %a, %i1, 8
  %p2 = gep %a, %iq, 8
  %x0 = load %p0, f64
  %x1 = load %p1, f64
  %x2 = load %p2, f64
  %t0 = fmul %x0, 0.25
  %t1 = fmul %x1, 0.5
  %t2 = fmul %x2, 0.25
  %s1 = fadd %t0, %t1
  %s2 = fadd %s1, %t2
  %pc = gep %c, %i, 8
  store %s2, %pc
  %i2 = add %i, 1
  %c1 = cmp slt %i2, %n
  condbr %c1, fir, mid
mid:
  br clamp
clamp:
  %j = phi i64 [0, mid] [%j2, clamp]
  %pj = gep %c, %j, 8
  %y = load %pj, f64
  %lo = fmax %y, -1.0
  %hi = fmin %lo, 1.0
  store %hi, %pj
  %j2 = add %j, 1
  %c2 = cmp slt %j2, %n
  condbr %c2, clamp, exit
exit:
  ret
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(APP)?;
    let func = module.function("fir_clamp").expect("parsed");

    // Unrolling targets one loop; compile without it so both stages become
    // regions with their own configurations.
    let options = CompilerOptions { unroll_factor: 1, ..CompilerOptions::default() };
    let compiled = compile(func, &options)?;
    println!("regions: {}", compiled.regions.len());
    for r in &compiled.regions {
        println!("  {}: {} fabric ops, {} in / {} out", r.name, r.compute_ops, r.inputs, r.outputs);
    }
    println!("configurations in the program table: {}", compiled.accelerated.configs.len());

    // Inputs and the reference (same operation order as the IR).
    let n = 256usize;
    let a: Vec<f64> = (0..n + 2).map(|k| ((k as f64) * 0.37).sin() * 3.0).collect();
    let mut want = vec![0.0f64; n];
    for i in 0..n {
        want[i] = a[i] * 0.25 + a[i + 1] * 0.5 + a[i + 2] * 0.25;
    }
    for w in &mut want {
        // Mirrors the IR's fmax-then-fmin order exactly (same as clamp for
        // these finite values).
        *w = w.clamp(-1.0, 1.0);
    }
    let (buf_a, buf_c) = (0x20_0000u64, 0x40_0000u64);
    let args = [buf_a, buf_c, n as u64];
    let init = vec![(buf_a, a.iter().map(|x| x.to_bits()).collect::<Vec<_>>())];
    let expected = vec![(buf_c, want.iter().map(|x| x.to_bits()).collect::<Vec<_>>())];

    let rc = RunConfig::default();
    let base = run_program("baseline", &compiled.baseline, &args, &init, &expected, &rc)?;
    let dyser = run_program("dyser", &compiled.accelerated, &args, &init, &expected, &rc)?;

    println!("\nbaseline cycles : {}", base.cycles);
    println!("dyser cycles    : {}", dyser.cycles);
    println!("speedup         : {:.2}x", base.cycles as f64 / dyser.cycles as f64);
    println!("configs loaded  : {}", dyser.fabric.configs_loaded);
    println!("fabric firings  : {}", dyser.fabric.fu_fires());
    println!("\nboth stages verified bit-exactly against the reference.");
    Ok(())
}
