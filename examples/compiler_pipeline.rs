//! A tour of the co-designed compiler: watch one kernel move through
//! every stage — textual IR, shape classification, if-conversion,
//! unrolling, slicing, spatial scheduling, and final SPARC+DySER code.
//!
//! ```text
//! cargo run --release --example compiler_pipeline
//! ```

use sparc_dyser::compiler::ir::parser::parse_module;
use sparc_dyser::compiler::{classify_loops, compile, CompilerOptions};

const KERNEL: &str = r"
// saxpy with a clamp: c[i] = min(2.5*a[i] + b[i], 10.0)
func @saxpy_clamp(%a: ptr, %b: ptr, %c: ptr, %n: i64) {
entry:
  br body
body:
  %i = phi i64 [0, entry] [%i2, body]
  %pa = gep %a, %i, 8
  %pb = gep %b, %i, 8
  %x = load %pa, f64
  %y = load %pb, f64
  %ax = fmul %x, 2.5
  %s = fadd %ax, %y
  %clamped = fmin %s, 10.0
  %pc = gep %c, %i, 8
  store %clamped, %pc
  %i2 = add %i, 1
  %cond = cmp slt %i2, %n
  condbr %cond, body, exit
exit:
  ret
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== 1. The kernel, in textual IR ===\n{}", KERNEL.trim());
    let module = parse_module(KERNEL)?;
    let func = module.function("saxpy_clamp").expect("parsed function");

    println!("\n=== 2. Control-flow shape classification ===");
    for report in classify_loops(func) {
        println!(
            "loop at block {}: {} ({} blocks, {} exit edges) -> acceleratable: {}",
            report.header.index(),
            report.shape.label(),
            report.body_blocks,
            report.exit_edges,
            report.shape.acceleratable()
        );
    }

    println!("\n=== 3. Full pipeline: if-convert, unroll x4, slice, schedule ===");
    let options = CompilerOptions::default();
    let compiled = compile(func, &options)?;
    for region in &compiled.regions {
        println!(
            "region `{}`: {} compute ops moved to the fabric, {} inputs, {} outputs",
            region.name, region.compute_ops, region.inputs, region.outputs
        );
    }
    println!(
        "configurations: {} ({} bits each)",
        compiled.accelerated.configs.len(),
        compiled
            .accelerated
            .configs
            .iter()
            .map(|c| c.frame_bits().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("\n=== 4. Baseline SPARC code (first 24 instructions) ===");
    for line in compiled.baseline.disassemble().lines().take(24) {
        println!("{line}");
    }

    println!("\n=== 5. SPARC-DySER code (first 32 instructions) ===");
    for line in compiled.accelerated.disassemble().lines().take(32) {
        println!("{line}");
    }
    println!(
        "\nstatic code: baseline {} instructions, accelerated {}",
        compiled.baseline.len(),
        compiled.accelerated.len()
    );
    Ok(())
}
