//! The paper's second key finding, reproduced: the compiler extracts
//! computationally intensive regular *and* irregular code, but two
//! control-flow shapes curtail it — and an adaptive mechanism only
//! partially helps when the code is not compute-intense.
//!
//! ```text
//! cargo run --release --example irregular_control_flow
//! ```

use sparc_dyser::compiler::classify_loops;
use sparc_dyser::core::{run_kernel, RunConfig};
use sparc_dyser::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = suite();

    println!("Irregular-control kernels through the DySER compiler:\n");
    for name in ["relu_clamp", "absmax", "find_first", "cond_store", "scan_poly"] {
        let kernel = kernels.iter().find(|k| k.name == name).expect("kernel in suite");
        let shapes = classify_loops(&kernel.function());
        let shape = &shapes[0];

        let mut config = RunConfig::default();
        config.compiler = kernel.compiler_options(config.system.geometry);
        let result = run_kernel(&kernel.case(256, 7), &config)?;

        println!("{name} — {}", kernel.description);
        println!(
            "  shape       : {} ({} body blocks, {} exit edges)",
            shape.shape.label(),
            shape.body_blocks,
            shape.exit_edges
        );
        println!("  accelerated : {}", result.accelerated_any);
        println!("  speedup     : {:.2}x\n", result.speedup);
    }

    // The adaptive mechanism, toggled explicitly: scan_poly's loop-exit
    // test is data-dependent; offloading its dataflow into the fabric
    // serializes each iteration behind a `drecv`.
    let scan = kernels.iter().find(|k| k.name == "scan_poly").unwrap();
    let mut with_offload = RunConfig::default();
    with_offload.compiler = scan.compiler_options(with_offload.system.geometry);
    let mut without = with_offload.clone();
    without.compiler.region.offload_exit_condition = false;

    let on = run_kernel(&scan.case(256, 7), &with_offload)?;
    let off = run_kernel(&scan.case(256, 7), &without)?;
    println!("scan_poly, adaptive exit-condition offload:");
    println!("  off: accelerated={} speedup {:.2}x", off.accelerated_any, off.speedup);
    println!("  on : accelerated={} speedup {:.2}x", on.accelerated_any, on.speedup);
    println!(
        "\nFinding (ii) reproduced: the two shapes stay on the core, and the\n\
         adaptive mechanism does not pay off on non-compute-intense code."
    );
    Ok(())
}
