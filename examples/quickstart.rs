//! Quickstart: compile one kernel for both machines, run both, compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparc_dyser::core::{run_kernel, RunConfig};
use sparc_dyser::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = suite();
    let kernel = kernels.iter().find(|k| k.name == "poly6").expect("poly6 in suite");

    // One call compiles the kernel twice (OpenSPARC baseline and
    // SPARC-DySER), runs both on identically configured systems, and
    // verifies both outputs against the reference implementation.
    let mut config = RunConfig::default();
    config.compiler = kernel.compiler_options(config.system.geometry);
    let result = run_kernel(&kernel.case(512, 42), &config)?;

    println!("{}", sparc_dyser::core::report::comparison(&result));
    println!("dyser stall breakdown:");
    println!("{}", sparc_dyser::core::report::stall_breakdown(&result.dyser));

    for region in &result.regions {
        println!(
            "region {} : {} fabric ops, {} in / {} out ports",
            region.name, region.compute_ops, region.inputs, region.outputs
        );
    }
    Ok(())
}
