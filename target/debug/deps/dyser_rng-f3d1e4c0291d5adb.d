/root/repo/target/debug/deps/dyser_rng-f3d1e4c0291d5adb.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdyser_rng-f3d1e4c0291d5adb.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdyser_rng-f3d1e4c0291d5adb.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
