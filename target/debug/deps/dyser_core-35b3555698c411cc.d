/root/repo/target/debug/deps/dyser_core-35b3555698c411cc.d: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/dyser_core-35b3555698c411cc: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/harness.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
