/root/repo/target/debug/deps/prop_roundtrip-7fbd8bb8d70ad905.d: crates/isa/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-7fbd8bb8d70ad905: crates/isa/tests/prop_roundtrip.rs

crates/isa/tests/prop_roundtrip.rs:
