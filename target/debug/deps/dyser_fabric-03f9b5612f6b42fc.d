/root/repo/target/debug/deps/dyser_fabric-03f9b5612f6b42fc.d: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/libdyser_fabric-03f9b5612f6b42fc.rlib: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/libdyser_fabric-03f9b5612f6b42fc.rmeta: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/builder.rs:
crates/fabric/src/config.rs:
crates/fabric/src/exec.rs:
crates/fabric/src/geom.rs:
crates/fabric/src/op.rs:
crates/fabric/src/stats.rs:
