/root/repo/target/debug/deps/sparc_dyser-26d9aeab575c2128.d: src/lib.rs

/root/repo/target/debug/deps/sparc_dyser-26d9aeab575c2128: src/lib.rs

src/lib.rs:
