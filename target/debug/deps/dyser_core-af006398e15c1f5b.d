/root/repo/target/debug/deps/dyser_core-af006398e15c1f5b.d: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libdyser_core-af006398e15c1f5b.rlib: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libdyser_core-af006398e15c1f5b.rmeta: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/harness.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
