/root/repo/target/debug/deps/dyser_mem-4f7347aa7e042a2d.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

/root/repo/target/debug/deps/dyser_mem-4f7347aa7e042a2d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/memory.rs:
