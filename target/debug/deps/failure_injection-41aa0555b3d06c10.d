/root/repo/target/debug/deps/failure_injection-41aa0555b3d06c10.d: crates/core/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-41aa0555b3d06c10: crates/core/tests/failure_injection.rs

crates/core/tests/failure_injection.rs:
