/root/repo/target/debug/deps/suite_end_to_end-db33045ce98719e7.d: tests/suite_end_to_end.rs

/root/repo/target/debug/deps/suite_end_to_end-db33045ce98719e7: tests/suite_end_to_end.rs

tests/suite_end_to_end.rs:
