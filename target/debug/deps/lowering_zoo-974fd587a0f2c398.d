/root/repo/target/debug/deps/lowering_zoo-974fd587a0f2c398.d: tests/lowering_zoo.rs

/root/repo/target/debug/deps/lowering_zoo-974fd587a0f2c398: tests/lowering_zoo.rs

tests/lowering_zoo.rs:
