/root/repo/target/debug/deps/multi_store_output-eff2d60bcae0c7b0.d: tests/multi_store_output.rs

/root/repo/target/debug/deps/multi_store_output-eff2d60bcae0c7b0: tests/multi_store_output.rs

tests/multi_store_output.rs:
