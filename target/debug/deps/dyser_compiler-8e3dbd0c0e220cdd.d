/root/repo/target/debug/deps/dyser_compiler-8e3dbd0c0e220cdd.d: crates/compiler/src/lib.rs crates/compiler/src/analysis/mod.rs crates/compiler/src/analysis/cfg.rs crates/compiler/src/analysis/dom.rs crates/compiler/src/analysis/loops.rs crates/compiler/src/codegen/mod.rs crates/compiler/src/dyser/mod.rs crates/compiler/src/dyser/region.rs crates/compiler/src/dyser/shapes.rs crates/compiler/src/ir/mod.rs crates/compiler/src/ir/interp.rs crates/compiler/src/ir/parser.rs crates/compiler/src/ir/verify.rs crates/compiler/src/opt/mod.rs crates/compiler/src/opt/constfold.rs crates/compiler/src/opt/cse.rs crates/compiler/src/opt/dce.rs crates/compiler/src/opt/ifconv.rs crates/compiler/src/opt/licm.rs crates/compiler/src/opt/spec.rs crates/compiler/src/opt/unroll.rs crates/compiler/src/pipeline.rs crates/compiler/src/schedule.rs

/root/repo/target/debug/deps/libdyser_compiler-8e3dbd0c0e220cdd.rlib: crates/compiler/src/lib.rs crates/compiler/src/analysis/mod.rs crates/compiler/src/analysis/cfg.rs crates/compiler/src/analysis/dom.rs crates/compiler/src/analysis/loops.rs crates/compiler/src/codegen/mod.rs crates/compiler/src/dyser/mod.rs crates/compiler/src/dyser/region.rs crates/compiler/src/dyser/shapes.rs crates/compiler/src/ir/mod.rs crates/compiler/src/ir/interp.rs crates/compiler/src/ir/parser.rs crates/compiler/src/ir/verify.rs crates/compiler/src/opt/mod.rs crates/compiler/src/opt/constfold.rs crates/compiler/src/opt/cse.rs crates/compiler/src/opt/dce.rs crates/compiler/src/opt/ifconv.rs crates/compiler/src/opt/licm.rs crates/compiler/src/opt/spec.rs crates/compiler/src/opt/unroll.rs crates/compiler/src/pipeline.rs crates/compiler/src/schedule.rs

/root/repo/target/debug/deps/libdyser_compiler-8e3dbd0c0e220cdd.rmeta: crates/compiler/src/lib.rs crates/compiler/src/analysis/mod.rs crates/compiler/src/analysis/cfg.rs crates/compiler/src/analysis/dom.rs crates/compiler/src/analysis/loops.rs crates/compiler/src/codegen/mod.rs crates/compiler/src/dyser/mod.rs crates/compiler/src/dyser/region.rs crates/compiler/src/dyser/shapes.rs crates/compiler/src/ir/mod.rs crates/compiler/src/ir/interp.rs crates/compiler/src/ir/parser.rs crates/compiler/src/ir/verify.rs crates/compiler/src/opt/mod.rs crates/compiler/src/opt/constfold.rs crates/compiler/src/opt/cse.rs crates/compiler/src/opt/dce.rs crates/compiler/src/opt/ifconv.rs crates/compiler/src/opt/licm.rs crates/compiler/src/opt/spec.rs crates/compiler/src/opt/unroll.rs crates/compiler/src/pipeline.rs crates/compiler/src/schedule.rs

crates/compiler/src/lib.rs:
crates/compiler/src/analysis/mod.rs:
crates/compiler/src/analysis/cfg.rs:
crates/compiler/src/analysis/dom.rs:
crates/compiler/src/analysis/loops.rs:
crates/compiler/src/codegen/mod.rs:
crates/compiler/src/dyser/mod.rs:
crates/compiler/src/dyser/region.rs:
crates/compiler/src/dyser/shapes.rs:
crates/compiler/src/ir/mod.rs:
crates/compiler/src/ir/interp.rs:
crates/compiler/src/ir/parser.rs:
crates/compiler/src/ir/verify.rs:
crates/compiler/src/opt/mod.rs:
crates/compiler/src/opt/constfold.rs:
crates/compiler/src/opt/cse.rs:
crates/compiler/src/opt/dce.rs:
crates/compiler/src/opt/ifconv.rs:
crates/compiler/src/opt/licm.rs:
crates/compiler/src/opt/spec.rs:
crates/compiler/src/opt/unroll.rs:
crates/compiler/src/pipeline.rs:
crates/compiler/src/schedule.rs:
