/root/repo/target/debug/deps/determinism-470cab8e8d4175a1.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-470cab8e8d4175a1: tests/determinism.rs

tests/determinism.rs:
