/root/repo/target/debug/deps/dyser_bench-3496d4b8b6c7b95a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libdyser_bench-3496d4b8b6c7b95a.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libdyser_bench-3496d4b8b6c7b95a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
