/root/repo/target/debug/deps/dyser_sparc-14eedaf85e9f656d.d: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

/root/repo/target/debug/deps/libdyser_sparc-14eedaf85e9f656d.rlib: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

/root/repo/target/debug/deps/libdyser_sparc-14eedaf85e9f656d.rmeta: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

crates/sparc/src/lib.rs:
crates/sparc/src/bus.rs:
crates/sparc/src/coproc.rs:
crates/sparc/src/pipeline.rs:
crates/sparc/src/regfile.rs:
crates/sparc/src/stats.rs:
