/root/repo/target/debug/deps/textual_ir_roundtrip-48da1f9fe470c47d.d: tests/textual_ir_roundtrip.rs

/root/repo/target/debug/deps/textual_ir_roundtrip-48da1f9fe470c47d: tests/textual_ir_roundtrip.rs

tests/textual_ir_roundtrip.rs:
