/root/repo/target/debug/deps/dyser_energy-e0c9c4fa92bf58f1.d: crates/energy/src/lib.rs

/root/repo/target/debug/deps/dyser_energy-e0c9c4fa92bf58f1: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
