/root/repo/target/debug/deps/sparc_dyser-5d6720e2a70f3642.d: src/lib.rs

/root/repo/target/debug/deps/libsparc_dyser-5d6720e2a70f3642.rlib: src/lib.rs

/root/repo/target/debug/deps/libsparc_dyser-5d6720e2a70f3642.rmeta: src/lib.rs

src/lib.rs:
