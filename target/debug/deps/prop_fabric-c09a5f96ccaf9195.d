/root/repo/target/debug/deps/prop_fabric-c09a5f96ccaf9195.d: crates/fabric/tests/prop_fabric.rs

/root/repo/target/debug/deps/prop_fabric-c09a5f96ccaf9195: crates/fabric/tests/prop_fabric.rs

crates/fabric/tests/prop_fabric.rs:
