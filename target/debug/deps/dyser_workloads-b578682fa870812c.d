/root/repo/target/debug/deps/dyser_workloads-b578682fa870812c.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

/root/repo/target/debug/deps/libdyser_workloads-b578682fa870812c.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

/root/repo/target/debug/deps/libdyser_workloads-b578682fa870812c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/manual.rs:
