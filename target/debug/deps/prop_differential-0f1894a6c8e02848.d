/root/repo/target/debug/deps/prop_differential-0f1894a6c8e02848.d: tests/prop_differential.rs

/root/repo/target/debug/deps/prop_differential-0f1894a6c8e02848: tests/prop_differential.rs

tests/prop_differential.rs:
