/root/repo/target/debug/deps/dyser_fabric-7413c5a9b1670e64.d: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/dyser_fabric-7413c5a9b1670e64: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/builder.rs:
crates/fabric/src/config.rs:
crates/fabric/src/exec.rs:
crates/fabric/src/geom.rs:
crates/fabric/src/op.rs:
crates/fabric/src/stats.rs:
