/root/repo/target/debug/deps/dyser_mem-02612be9062ec5a0.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

/root/repo/target/debug/deps/libdyser_mem-02612be9062ec5a0.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

/root/repo/target/debug/deps/libdyser_mem-02612be9062ec5a0.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/memory.rs:
