/root/repo/target/debug/deps/dyser_rng-fbae46d9011a95db.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/dyser_rng-fbae46d9011a95db: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
