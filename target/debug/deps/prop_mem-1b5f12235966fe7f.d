/root/repo/target/debug/deps/prop_mem-1b5f12235966fe7f.d: crates/mem/tests/prop_mem.rs

/root/repo/target/debug/deps/prop_mem-1b5f12235966fe7f: crates/mem/tests/prop_mem.rs

crates/mem/tests/prop_mem.rs:
