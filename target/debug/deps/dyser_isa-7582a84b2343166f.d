/root/repo/target/debug/deps/dyser_isa-7582a84b2343166f.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libdyser_isa-7582a84b2343166f.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libdyser_isa-7582a84b2343166f.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cond.rs:
crates/isa/src/dyser.rs:
crates/isa/src/encode.rs:
crates/isa/src/instr.rs:
crates/isa/src/reg.rs:
