/root/repo/target/debug/deps/multi_region-9a38d6a15285e97f.d: tests/multi_region.rs

/root/repo/target/debug/deps/multi_region-9a38d6a15285e97f: tests/multi_region.rs

tests/multi_region.rs:
