/root/repo/target/debug/deps/dyser_isa-4e439d932eb7a69a.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/dyser_isa-4e439d932eb7a69a: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cond.rs:
crates/isa/src/dyser.rs:
crates/isa/src/encode.rs:
crates/isa/src/instr.rs:
crates/isa/src/reg.rs:
