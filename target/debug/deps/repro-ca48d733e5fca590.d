/root/repo/target/debug/deps/repro-ca48d733e5fca590.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-ca48d733e5fca590: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
