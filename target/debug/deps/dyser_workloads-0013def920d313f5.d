/root/repo/target/debug/deps/dyser_workloads-0013def920d313f5.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

/root/repo/target/debug/deps/dyser_workloads-0013def920d313f5: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/manual.rs:
