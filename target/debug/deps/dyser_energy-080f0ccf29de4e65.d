/root/repo/target/debug/deps/dyser_energy-080f0ccf29de4e65.d: crates/energy/src/lib.rs

/root/repo/target/debug/deps/libdyser_energy-080f0ccf29de4e65.rlib: crates/energy/src/lib.rs

/root/repo/target/debug/deps/libdyser_energy-080f0ccf29de4e65.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
