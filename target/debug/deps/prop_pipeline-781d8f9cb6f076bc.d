/root/repo/target/debug/deps/prop_pipeline-781d8f9cb6f076bc.d: crates/sparc/tests/prop_pipeline.rs

/root/repo/target/debug/deps/prop_pipeline-781d8f9cb6f076bc: crates/sparc/tests/prop_pipeline.rs

crates/sparc/tests/prop_pipeline.rs:
