/root/repo/target/debug/deps/dyser_bench-33cb84f7ef5be5f2.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/dyser_bench-33cb84f7ef5be5f2: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
