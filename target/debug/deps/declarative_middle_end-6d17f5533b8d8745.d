/root/repo/target/debug/deps/declarative_middle_end-6d17f5533b8d8745.d: tests/declarative_middle_end.rs

/root/repo/target/debug/deps/declarative_middle_end-6d17f5533b8d8745: tests/declarative_middle_end.rs

tests/declarative_middle_end.rs:
