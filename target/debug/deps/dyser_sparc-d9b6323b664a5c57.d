/root/repo/target/debug/deps/dyser_sparc-d9b6323b664a5c57.d: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

/root/repo/target/debug/deps/dyser_sparc-d9b6323b664a5c57: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

crates/sparc/src/lib.rs:
crates/sparc/src/bus.rs:
crates/sparc/src/coproc.rs:
crates/sparc/src/pipeline.rs:
crates/sparc/src/regfile.rs:
crates/sparc/src/stats.rs:
