/root/repo/target/debug/deps/spill_pressure-4ba60553540f13ad.d: tests/spill_pressure.rs

/root/repo/target/debug/deps/spill_pressure-4ba60553540f13ad: tests/spill_pressure.rs

tests/spill_pressure.rs:
