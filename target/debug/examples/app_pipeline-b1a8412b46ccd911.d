/root/repo/target/debug/examples/app_pipeline-b1a8412b46ccd911.d: examples/app_pipeline.rs

/root/repo/target/debug/examples/app_pipeline-b1a8412b46ccd911: examples/app_pipeline.rs

examples/app_pipeline.rs:
