/root/repo/target/debug/examples/custom_fabric-d90b30fdd2ef5930.d: examples/custom_fabric.rs

/root/repo/target/debug/examples/custom_fabric-d90b30fdd2ef5930: examples/custom_fabric.rs

examples/custom_fabric.rs:
