/root/repo/target/debug/examples/irregular_control_flow-507b6598448208dc.d: examples/irregular_control_flow.rs

/root/repo/target/debug/examples/irregular_control_flow-507b6598448208dc: examples/irregular_control_flow.rs

examples/irregular_control_flow.rs:
