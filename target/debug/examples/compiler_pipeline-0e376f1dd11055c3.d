/root/repo/target/debug/examples/compiler_pipeline-0e376f1dd11055c3.d: examples/compiler_pipeline.rs

/root/repo/target/debug/examples/compiler_pipeline-0e376f1dd11055c3: examples/compiler_pipeline.rs

examples/compiler_pipeline.rs:
