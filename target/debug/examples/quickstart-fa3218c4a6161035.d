/root/repo/target/debug/examples/quickstart-fa3218c4a6161035.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fa3218c4a6161035: examples/quickstart.rs

examples/quickstart.rs:
