/root/repo/target/release/deps/prop_differential-1fcf6fd7dd596bc5.d: tests/prop_differential.rs

/root/repo/target/release/deps/prop_differential-1fcf6fd7dd596bc5: tests/prop_differential.rs

tests/prop_differential.rs:
