/root/repo/target/release/deps/dyser_rng-d6865bea3c022252.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libdyser_rng-d6865bea3c022252.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libdyser_rng-d6865bea3c022252.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
