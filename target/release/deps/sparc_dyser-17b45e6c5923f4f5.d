/root/repo/target/release/deps/sparc_dyser-17b45e6c5923f4f5.d: src/lib.rs

/root/repo/target/release/deps/libsparc_dyser-17b45e6c5923f4f5.rlib: src/lib.rs

/root/repo/target/release/deps/libsparc_dyser-17b45e6c5923f4f5.rmeta: src/lib.rs

src/lib.rs:
