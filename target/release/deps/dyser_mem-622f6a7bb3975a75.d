/root/repo/target/release/deps/dyser_mem-622f6a7bb3975a75.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

/root/repo/target/release/deps/libdyser_mem-622f6a7bb3975a75.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

/root/repo/target/release/deps/libdyser_mem-622f6a7bb3975a75.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/memory.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/memory.rs:
