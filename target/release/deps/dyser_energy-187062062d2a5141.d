/root/repo/target/release/deps/dyser_energy-187062062d2a5141.d: crates/energy/src/lib.rs

/root/repo/target/release/deps/libdyser_energy-187062062d2a5141.rlib: crates/energy/src/lib.rs

/root/repo/target/release/deps/libdyser_energy-187062062d2a5141.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
