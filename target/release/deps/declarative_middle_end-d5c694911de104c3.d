/root/repo/target/release/deps/declarative_middle_end-d5c694911de104c3.d: tests/declarative_middle_end.rs

/root/repo/target/release/deps/declarative_middle_end-d5c694911de104c3: tests/declarative_middle_end.rs

tests/declarative_middle_end.rs:
