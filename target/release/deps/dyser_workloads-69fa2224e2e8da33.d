/root/repo/target/release/deps/dyser_workloads-69fa2224e2e8da33.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

/root/repo/target/release/deps/libdyser_workloads-69fa2224e2e8da33.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

/root/repo/target/release/deps/libdyser_workloads-69fa2224e2e8da33.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/manual.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/manual.rs:
