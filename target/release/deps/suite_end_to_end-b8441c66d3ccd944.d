/root/repo/target/release/deps/suite_end_to_end-b8441c66d3ccd944.d: tests/suite_end_to_end.rs

/root/repo/target/release/deps/suite_end_to_end-b8441c66d3ccd944: tests/suite_end_to_end.rs

tests/suite_end_to_end.rs:
