/root/repo/target/release/deps/determinism-c53248b12211ec17.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-c53248b12211ec17: tests/determinism.rs

tests/determinism.rs:
