/root/repo/target/release/deps/dyser_sparc-dc04ef41a634c0ab.d: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

/root/repo/target/release/deps/libdyser_sparc-dc04ef41a634c0ab.rlib: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

/root/repo/target/release/deps/libdyser_sparc-dc04ef41a634c0ab.rmeta: crates/sparc/src/lib.rs crates/sparc/src/bus.rs crates/sparc/src/coproc.rs crates/sparc/src/pipeline.rs crates/sparc/src/regfile.rs crates/sparc/src/stats.rs

crates/sparc/src/lib.rs:
crates/sparc/src/bus.rs:
crates/sparc/src/coproc.rs:
crates/sparc/src/pipeline.rs:
crates/sparc/src/regfile.rs:
crates/sparc/src/stats.rs:
