/root/repo/target/release/deps/dyser_isa-5e8821b3c73e7d60.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libdyser_isa-5e8821b3c73e7d60.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libdyser_isa-5e8821b3c73e7d60.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/dyser.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cond.rs:
crates/isa/src/dyser.rs:
crates/isa/src/encode.rs:
crates/isa/src/instr.rs:
crates/isa/src/reg.rs:
