/root/repo/target/release/deps/multi_region-9d42cb5afaa02cba.d: tests/multi_region.rs

/root/repo/target/release/deps/multi_region-9d42cb5afaa02cba: tests/multi_region.rs

tests/multi_region.rs:
