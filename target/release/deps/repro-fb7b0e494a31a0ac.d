/root/repo/target/release/deps/repro-fb7b0e494a31a0ac.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-fb7b0e494a31a0ac: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
