/root/repo/target/release/deps/multi_store_output-6dd1d22d06127e4f.d: tests/multi_store_output.rs

/root/repo/target/release/deps/multi_store_output-6dd1d22d06127e4f: tests/multi_store_output.rs

tests/multi_store_output.rs:
