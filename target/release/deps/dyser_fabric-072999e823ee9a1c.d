/root/repo/target/release/deps/dyser_fabric-072999e823ee9a1c.d: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/libdyser_fabric-072999e823ee9a1c.rlib: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/libdyser_fabric-072999e823ee9a1c.rmeta: crates/fabric/src/lib.rs crates/fabric/src/builder.rs crates/fabric/src/config.rs crates/fabric/src/exec.rs crates/fabric/src/geom.rs crates/fabric/src/op.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/builder.rs:
crates/fabric/src/config.rs:
crates/fabric/src/exec.rs:
crates/fabric/src/geom.rs:
crates/fabric/src/op.rs:
crates/fabric/src/stats.rs:
