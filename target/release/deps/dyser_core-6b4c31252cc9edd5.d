/root/repo/target/release/deps/dyser_core-6b4c31252cc9edd5.d: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libdyser_core-6b4c31252cc9edd5.rlib: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/release/deps/libdyser_core-6b4c31252cc9edd5.rmeta: crates/core/src/lib.rs crates/core/src/harness.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/harness.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
