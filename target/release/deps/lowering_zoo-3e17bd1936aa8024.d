/root/repo/target/release/deps/lowering_zoo-3e17bd1936aa8024.d: tests/lowering_zoo.rs

/root/repo/target/release/deps/lowering_zoo-3e17bd1936aa8024: tests/lowering_zoo.rs

tests/lowering_zoo.rs:
