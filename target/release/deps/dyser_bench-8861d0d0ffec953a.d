/root/repo/target/release/deps/dyser_bench-8861d0d0ffec953a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libdyser_bench-8861d0d0ffec953a.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libdyser_bench-8861d0d0ffec953a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
