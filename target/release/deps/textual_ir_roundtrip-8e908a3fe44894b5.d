/root/repo/target/release/deps/textual_ir_roundtrip-8e908a3fe44894b5.d: tests/textual_ir_roundtrip.rs

/root/repo/target/release/deps/textual_ir_roundtrip-8e908a3fe44894b5: tests/textual_ir_roundtrip.rs

tests/textual_ir_roundtrip.rs:
