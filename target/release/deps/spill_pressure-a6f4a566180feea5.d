/root/repo/target/release/deps/spill_pressure-a6f4a566180feea5.d: tests/spill_pressure.rs

/root/repo/target/release/deps/spill_pressure-a6f4a566180feea5: tests/spill_pressure.rs

tests/spill_pressure.rs:
