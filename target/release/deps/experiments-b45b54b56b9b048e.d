/root/repo/target/release/deps/experiments-b45b54b56b9b048e.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-b45b54b56b9b048e: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
