/root/repo/target/release/deps/sparc_dyser-d0d9dbe1122da673.d: src/lib.rs

/root/repo/target/release/deps/sparc_dyser-d0d9dbe1122da673: src/lib.rs

src/lib.rs:
