/root/repo/target/release/examples/quickstart-ef0c1f2718345475.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ef0c1f2718345475: examples/quickstart.rs

examples/quickstart.rs:
