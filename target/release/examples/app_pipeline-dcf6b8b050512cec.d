/root/repo/target/release/examples/app_pipeline-dcf6b8b050512cec.d: examples/app_pipeline.rs

/root/repo/target/release/examples/app_pipeline-dcf6b8b050512cec: examples/app_pipeline.rs

examples/app_pipeline.rs:
