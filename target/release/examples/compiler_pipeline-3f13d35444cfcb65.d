/root/repo/target/release/examples/compiler_pipeline-3f13d35444cfcb65.d: examples/compiler_pipeline.rs

/root/repo/target/release/examples/compiler_pipeline-3f13d35444cfcb65: examples/compiler_pipeline.rs

examples/compiler_pipeline.rs:
