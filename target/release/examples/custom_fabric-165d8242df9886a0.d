/root/repo/target/release/examples/custom_fabric-165d8242df9886a0.d: examples/custom_fabric.rs

/root/repo/target/release/examples/custom_fabric-165d8242df9886a0: examples/custom_fabric.rs

examples/custom_fabric.rs:
