/root/repo/target/release/examples/irregular_control_flow-2ec55b81c6a7cfff.d: examples/irregular_control_flow.rs

/root/repo/target/release/examples/irregular_control_flow-2ec55b81c6a7cfff: examples/irregular_control_flow.rs

examples/irregular_control_flow.rs:
